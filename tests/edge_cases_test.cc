// Edge cases and failure injection across modules: overflow paths,
// resource budgets, degenerate schemas (empty shared attributes, single
// attributes, duplicate schemas), and Lemma 2 route agreement swept over
// schema-overlap shapes (parameterized).
#include <gtest/gtest.h>

#include <limits>

#include "core/global.h"
#include "core/lifting.h"
#include "core/pairwise.h"
#include "core/two_bag.h"
#include "flow/consistency_network.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "solver/integer_feasibility.h"
#include "solver/simplex.h"
#include "util/random.h"

namespace bagc {
namespace {

// ---- overflow injection ----

TEST(OverflowTest, MarginalOverflowSurfaces) {
  // Two tuples projecting to the same Z-tuple with multiplicities whose
  // sum overflows uint64.
  uint64_t half = std::numeric_limits<uint64_t>::max() / 2 + 1;
  Bag bag(Schema{{0, 1}});
  ASSERT_TRUE(bag.Set(Tuple{{0, 0}}, half).ok());
  ASSERT_TRUE(bag.Set(Tuple{{1, 0}}, half).ok());
  auto marginal = bag.Marginal(Schema{{1}});
  EXPECT_FALSE(marginal.ok());
  EXPECT_EQ(marginal.status().code(), StatusCode::kArithmeticOverflow);
}

TEST(OverflowTest, ConsistencyNetworkRejectsHugeCardinalities) {
  uint64_t huge = FlowNetwork::kUnbounded;
  Bag r(Schema{{0, 1}});
  ASSERT_TRUE(r.Set(Tuple{{0, 0}}, huge).ok());
  ASSERT_TRUE(r.Set(Tuple{{1, 0}}, huge).ok());
  Bag s(Schema{{1, 2}});
  ASSERT_TRUE(s.Set(Tuple{{0, 0}}, huge).ok());
  ASSERT_TRUE(s.Set(Tuple{{0, 1}}, huge).ok());
  auto net = ConsistencyNetwork::Make(r, s);
  EXPECT_FALSE(net.ok());
}

TEST(OverflowTest, UnarySizeOverflowSurfaces) {
  uint64_t half = std::numeric_limits<uint64_t>::max() / 2 + 1;
  Bag bag(Schema{{0}});
  ASSERT_TRUE(bag.Set(Tuple{{0}}, half).ok());
  ASSERT_TRUE(bag.Set(Tuple{{1}}, half).ok());
  EXPECT_FALSE(bag.UnarySize().ok());
  // Binary size never overflows (sums of bit-lengths).
  EXPECT_GT(bag.BinarySize(), 0u);
}

// ---- resource budgets ----

TEST(BudgetTest, GlobalSolveJoinCapPropagates) {
  // Disjoint singleton schemas make the join support multiplicative.
  std::vector<Bag> bags;
  for (AttrId a = 0; a < 4; ++a) {
    Bag b(Schema{{a}});
    for (Value v = 0; v < 8; ++v) {
      ASSERT_TRUE(b.Set(Tuple{{v}}, 1).ok());
    }
    bags.push_back(std::move(b));
  }
  BagCollection c = *BagCollection::Make(bags);
  GlobalSolveOptions options;
  options.max_join_support = 100;  // < 8^4
  auto result = SolveGlobalConsistencyExact(c, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, SimplexTableauGuard) {
  // A program whose tableau would exceed the memory budget is rejected
  // rather than allocated.
  Rng rng(601);
  BagGenOptions options;
  options.support_size = 1200;
  options.domain_size = 128;
  auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  if (lp.rows.size() * (lp.variables.size() + lp.rows.size() + 1) >
      (size_t{1} << 24)) {
    auto res = SolveRationalFeasibility(lp);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  } else {
    GTEST_SKIP() << "instance unexpectedly small for the guard";
  }
}

// ---- degenerate schemas ----

TEST(DegenerateTest, SingleAttributeBags) {
  Bag r = *MakeBag(Schema{{0}}, {{{1}, 2}, {{2}, 3}});
  Bag s = *MakeBag(Schema{{0}}, {{{1}, 2}, {{2}, 3}});
  EXPECT_TRUE(*AreConsistent(r, s));
  auto witness = *FindWitness(r, s);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(*witness, r);  // X = Y: the witness is the bag itself
}

TEST(DegenerateTest, SingletonCollection) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{1, 2}, 3}});
  BagCollection c = *BagCollection::Make({r});
  auto witness = *SolveGlobalConsistencyAcyclic(c);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(*witness, r);
  EXPECT_TRUE(*ArePairwiseConsistent(c));
}

TEST(DegenerateTest, AllBagsEmpty) {
  BagCollection c = *BagCollection::Make(
      {Bag(Schema{{0, 1}}), Bag(Schema{{1, 2}}), Bag(Schema{{2, 3}})});
  auto witness = *SolveGlobalConsistencyAcyclic(c);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->IsEmpty());
}

TEST(DegenerateTest, OneEmptyOneNot) {
  Bag r(Schema{{0, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}});
  EXPECT_FALSE(*AreConsistent(r, s));
}

TEST(DegenerateTest, LiftPlanToFullVertexSetIsIdentity) {
  std::vector<Schema> edges = {Schema{{0, 1}}, Schema{{1, 2}}};
  LiftPlan plan = *PlanLiftToInduced(edges, Schema{{0, 1, 2}});
  EXPECT_TRUE(plan.ops.empty());
  Bag r = *MakeBag(Schema{{0, 1}}, {{{5, 6}, 2}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{6, 7}, 2}});
  auto lifted = *LiftCollection(plan, {r, s});
  EXPECT_EQ(lifted[0], r);
  EXPECT_EQ(lifted[1], s);
}

TEST(DegenerateTest, LiftThroughWholeEdgeDeletion) {
  // Edge {2} consists solely of a deleted vertex: along the plan it
  // becomes the empty schema and is removed as covered; the lift must
  // re-materialize a bag over {2} concentrated on u0 with the right
  // cardinality.
  std::vector<Schema> edges = {Schema{{0, 1}}, Schema{{1, 2}}, Schema{{2}}};
  LiftPlan plan = *PlanLiftToInduced(edges, Schema{{0, 1}});
  // Final edges: just {0,1} (and {1} from {1,2}? {1} ⊆ {0,1} is covered).
  ASSERT_EQ(plan.final_edges.size(), 1u);
  EXPECT_EQ(plan.final_edges[0], Schema({0, 1}));
  Bag d0 = *MakeBag(Schema{{0, 1}}, {{{4, 5}, 3}});
  auto lifted = *LiftCollection(plan, {d0});
  ASSERT_EQ(lifted.size(), 3u);
  EXPECT_EQ(lifted[0], d0);
  // Bag over {1,2}: marginal of d0 onto {1}, injected with u0 at attr 2.
  EXPECT_EQ(lifted[1].Multiplicity(Tuple{{5, 0}}), 3u);
  // Bag over {2}: the scalar cardinality at u0.
  EXPECT_EQ(lifted[2].Multiplicity(Tuple{{0}}), 3u);
  // And the lifted collection is globally consistent iff d0 is (trivially
  // consistent here).
  BagCollection c = *BagCollection::Make(lifted);
  EXPECT_TRUE(*ArePairwiseConsistent(c));
}

// ---- Lemma 2 route agreement across schema-overlap shapes ----

struct OverlapShape {
  Schema x;
  Schema y;
  const char* name;
};

class RouteAgreementTest : public ::testing::TestWithParam<OverlapShape> {};

TEST_P(RouteAgreementTest, AllRoutesAgree) {
  const OverlapShape& shape = GetParam();
  Rng rng(700);
  BagGenOptions options;
  options.support_size = 8;
  options.domain_size = 3;
  options.max_multiplicity = 5;
  for (int trial = 0; trial < 12; ++trial) {
    bool want = trial % 2 == 0;
    auto [r, s] = want ? *MakeConsistentPair(shape.x, shape.y, options, &rng)
                       : *MakeInconsistentPair(shape.x, shape.y, options, &rng);
    bool by_marginals = *AreConsistent(r, s);
    bool by_flow = FindWitness(r, s)->has_value();
    ConsistencyLp lp = *BuildConsistencyLp({r, s});
    bool by_integer = SolveIntegerFeasibility(lp)->has_value();
    bool by_simplex = SolveRationalFeasibility(lp)->feasible;
    EXPECT_EQ(by_marginals, by_flow) << shape.name;
    EXPECT_EQ(by_marginals, by_integer) << shape.name;
    EXPECT_EQ(by_marginals, by_simplex) << shape.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OverlapShapes, RouteAgreementTest,
    ::testing::Values(
        OverlapShape{Schema{{0, 1}}, Schema{{1, 2}}, "one_shared"},
        OverlapShape{Schema{{0, 1, 2}}, Schema{{1, 2, 3}}, "two_shared"},
        OverlapShape{Schema{{0}}, Schema{{1}}, "disjoint"},
        OverlapShape{Schema{{0, 1}}, Schema{{0, 1}}, "identical"},
        OverlapShape{Schema{{0, 1, 2, 3}}, Schema{{3}}, "contained"},
        OverlapShape{Schema{{0, 1, 2}}, Schema{{2, 3, 4, 5}}, "wide"}),
    [](const ::testing::TestParamInfo<OverlapShape>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace bagc
