// Regression suite for the SoA refactor: ColumnStore/ColumnView round
// trips, ColumnIndex grouping + batch probes against the TupleIndex
// reference, and row-path vs columnar-path marginal equivalence (including
// Tup(∅), empty projections, and multiplicity-overflow rejection).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "bag/bag.h"
#include "bag/krelation.h"
#include "engine/consistency_engine.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "tuple/column_store.h"
#include "tuple/tuple_index.h"
#include "util/random.h"

namespace bagc {
namespace {

Bag RandomBag(const Schema& schema, size_t support, uint64_t domain,
              uint64_t seed) {
  Rng rng(seed);
  BagGenOptions options;
  options.support_size = support;
  options.domain_size = domain;
  options.max_multiplicity = 1u << 10;
  return *MakeRandomBag(schema, options, &rng);
}

TEST(ColumnStoreTest, RowColumnRoundTrip) {
  Schema x{{0, 1, 2}};
  Bag bag = RandomBag(x, 100, 7, 42);
  ColumnStore cols = bag.ToColumns();
  ASSERT_EQ(cols.num_rows(), bag.SupportSize());
  ASSERT_EQ(cols.arity(), x.arity());
  for (size_t r = 0; r < bag.SupportSize(); ++r) {
    const Tuple& t = bag.entries()[r].first;
    EXPECT_EQ(cols.RowAt(r), t);
    for (size_t c = 0; c < x.arity(); ++c) {
      EXPECT_EQ(cols.column(c)[r], t.id(c));
    }
  }
  // Views see the same cells, and batch hashes equal per-row Tuple hashes.
  ColumnView view = cols.View();
  std::vector<uint64_t> hashes;
  view.HashRows(&hashes);
  for (size_t r = 0; r < bag.SupportSize(); ++r) {
    EXPECT_EQ(view.RowAt(r), bag.entries()[r].first);
    EXPECT_EQ(hashes[r], bag.entries()[r].first.Hash());
  }
}

TEST(ColumnStoreTest, SelectIsTheProjection) {
  Schema x{{0, 1, 2, 3}};
  Schema z{{1, 3}};
  Bag bag = RandomBag(x, 80, 5, 7);
  ColumnStore cols = bag.ToColumns();
  Projector proj = *Projector::Make(x, z);
  ColumnView selected = cols.View().Select(proj);
  ASSERT_EQ(selected.arity(), z.arity());
  for (size_t r = 0; r < bag.SupportSize(); ++r) {
    EXPECT_EQ(selected.RowAt(r), bag.entries()[r].first.Project(proj));
  }
}

TEST(ColumnStoreTest, ColumnIndexMatchesTupleIndex) {
  Schema x{{0, 1, 2}};
  Schema z{{0, 2}};
  Bag keys = RandomBag(x, 200, 4, 11);
  Bag probes = RandomBag(x, 150, 5, 13);
  Projector proj = *Projector::Make(x, z);

  // Reference: TupleIndex over per-row projected tuples.
  TupleIndex reference(keys.SupportSize());
  for (size_t r = 0; r < keys.SupportSize(); ++r) {
    reference.Insert(keys.entries()[r].first.Project(proj),
                     static_cast<uint32_t>(r));
  }

  ColumnStore key_cols = ColumnStore::FromEntries(keys.entries(), proj);
  ColumnIndex index(key_cols.View());
  ASSERT_EQ(index.NumGroups(), reference.NumGroups());
  for (size_t g = 0; g < index.NumGroups(); ++g) {
    // Same group order, same keys, same posting lists.
    EXPECT_EQ(index.keys().RowAt(index.LeadRow(g)), reference.GroupKey(g));
    EXPECT_EQ(index.GroupRows(g), reference.GroupIds(g));
  }

  ColumnStore probe_cols = ColumnStore::FromEntries(probes.entries(), proj);
  std::vector<uint32_t> match;
  index.ProbeAll(probe_cols.View(), &match);
  ASSERT_EQ(match.size(), probes.SupportSize());
  for (size_t r = 0; r < probes.SupportSize(); ++r) {
    const std::vector<uint32_t>* expected =
        reference.Find(probes.entries()[r].first.Project(proj));
    if (expected == nullptr) {
      EXPECT_EQ(match[r], ColumnIndex::kNoGroup);
    } else {
      ASSERT_NE(match[r], ColumnIndex::kNoGroup);
      EXPECT_EQ(index.GroupRows(match[r]), *expected);
    }
  }
}

TEST(ColumnStoreTest, MarginalPathsAgree) {
  // Sizes straddling kColumnarMinRows so both dispatch arms are hit, and
  // both forced paths are pinned against each other on every size.
  Schema x{{0, 1, 2}};
  for (size_t support : std::vector<size_t>{1, 8, kColumnarMinRows - 1,
                                            kColumnarMinRows, 100, 400}) {
    for (uint64_t domain : {2, 5, 50}) {
      Bag bag = RandomBag(x, support, domain, 1000 + support * 10 + domain);
      for (const Schema& z :
           {Schema{{0}}, Schema{{1}}, Schema{{0, 2}}, Schema{{0, 1, 2}}, Schema{}}) {
        Bag rows = *bag.MarginalRows(z);
        Bag columnar = *bag.MarginalColumnar(z);
        Bag dispatched = *bag.Marginal(z);
        EXPECT_EQ(rows, columnar) << "support=" << support << " z=" << z.ToString();
        EXPECT_EQ(rows, dispatched);
      }
    }
  }
}

TEST(ColumnStoreTest, EmptySchemaBags) {
  // Tup(∅) is non-empty: the empty tuple with some multiplicity.
  Bag empty_schema{Schema{}};
  ASSERT_TRUE(empty_schema.Set(Tuple{std::vector<Value>{}}, 5).ok());
  ColumnStore cols = empty_schema.ToColumns();
  EXPECT_EQ(cols.num_rows(), 1u);
  EXPECT_EQ(cols.arity(), 0u);
  EXPECT_EQ(cols.RowAt(0), (Tuple{std::vector<Value>{}}));
  EXPECT_EQ(*empty_schema.MarginalColumnar(Schema{}),
            *empty_schema.MarginalRows(Schema{}));

  // A projection onto ∅ groups every row into the single empty tuple.
  Bag bag = RandomBag(Schema{{0, 1}}, 64, 4, 99);
  Bag onto_empty = *bag.MarginalColumnar(Schema{});
  ASSERT_EQ(onto_empty.SupportSize(), 1u);
  EXPECT_EQ(onto_empty.MultiplicityAt(0), *bag.UnarySize());
  EXPECT_EQ(onto_empty, *bag.MarginalRows(Schema{}));

  // And an empty bag stays empty on both paths.
  Bag none{Schema{{0, 1}}};
  EXPECT_TRUE(none.MarginalColumnar(Schema{{0}})->IsEmpty());
  EXPECT_TRUE(none.MarginalRows(Schema{{0}})->IsEmpty());
}

TEST(ColumnStoreTest, MultiplicityOverflowRejected) {
  // Two rows collapsing onto one marginal tuple with mults that overflow
  // uint64 must fail on both paths (not wrap).
  Schema x{{0, 1}};
  Bag bag(x);
  uint64_t huge = std::numeric_limits<uint64_t>::max() - 1;
  ASSERT_TRUE(bag.Set(Tuple{{1, 1}}, huge).ok());
  ASSERT_TRUE(bag.Set(Tuple{{1, 2}}, huge).ok());
  Schema z{{0}};
  EXPECT_FALSE(bag.MarginalRows(z).ok());
  EXPECT_FALSE(bag.MarginalColumnar(z).ok());
  EXPECT_FALSE(bag.Marginal(z).ok());
}

TEST(ColumnStoreTest, GroupColumnsRejectsMismatchedInputs) {
  Bag bag = RandomBag(Schema{{0, 1}}, 40, 4, 3);
  ColumnStore cols = bag.ToColumns();
  // Arity mismatch between z and the projected view.
  EXPECT_FALSE(Bag::GroupColumns(Schema{{0}}, cols.View(), bag.entries()).ok());
}

TEST(ColumnStoreTest, KRelationColumnarMarginalMatchesBag) {
  // KRelation over the counting semiring must marginalize exactly like a
  // Bag — including through the columnar arm (>= kColumnarMinRows rows).
  Schema x{{0, 1, 2}};
  Bag bag = RandomBag(x, 128, 4, 21);
  KRelation<CountingSemiring> kr(x);
  for (const auto& [t, mult] : bag.entries()) {
    ASSERT_TRUE(kr.Set(t, mult).ok());
  }
  for (const Schema& z : {Schema{{0}}, Schema{{1, 2}}, Schema{}}) {
    Bag expected = *bag.MarginalRows(z);
    KRelation<CountingSemiring> got = *kr.Marginal(z);
    ASSERT_EQ(got.SupportSize(), expected.SupportSize());
    for (size_t i = 0; i < expected.SupportSize(); ++i) {
      EXPECT_EQ(got.entries()[i].first, expected.RowAt(i));
      EXPECT_EQ(got.entries()[i].second, expected.MultiplicityAt(i));
    }
  }
}

TEST(ColumnStoreTest, EngineMarginalPathsProduceIdenticalVerdicts) {
  // Row-forced and columnar-forced engines agree query-for-query.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(500 + seed);
    BagGenOptions options;
    options.support_size = 48;  // above kColumnarMinRows
    options.domain_size = 3;
    options.max_multiplicity = 6;
    Hypergraph h = *MakePath(4);
    BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
    if (seed % 2 == 1) {
      // Perturb one multiplicity so inconsistent verdicts are covered too.
      std::vector<Bag> bags = c.bags();
      Bag& victim = bags[seed % bags.size()];
      if (!victim.IsEmpty()) {
        Tuple t = victim.RowAt(0);
        uint64_t mult = victim.MultiplicityAt(0);
        ASSERT_TRUE(victim.Set(t, mult + 1).ok());
      }
      c = *BagCollection::Make(std::move(bags));
    }
    EngineOptions rows_opt;
    rows_opt.marginal_path = MarginalPath::kRows;
    EngineOptions cols_opt;
    cols_opt.marginal_path = MarginalPath::kColumnar;
    ConsistencyEngine rows_engine = *ConsistencyEngine::Make(c, rows_opt);
    ConsistencyEngine cols_engine = *ConsistencyEngine::Make(c, cols_opt);
    PairwiseVerdict vr = *rows_engine.PairwiseAll();
    PairwiseVerdict vc = *cols_engine.PairwiseAll();
    EXPECT_EQ(vr.consistent, vc.consistent);
    EXPECT_EQ(vr.witness_pair, vc.witness_pair);
    EXPECT_EQ(*rows_engine.Global(), *cols_engine.Global());
    for (size_t i = 0; i < c.size(); ++i) {
      for (size_t j = i + 1; j < c.size(); ++j) {
        EXPECT_EQ(*rows_engine.TwoBag(i, j), *cols_engine.TwoBag(i, j));
      }
    }
  }
}

TEST(ColumnStoreTest, ParallelRipFoldMatchesSequential) {
  // The Theorem 6 fold with pool-sharded next-marginal builds must return
  // the exact witness the single-threaded fold does.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(900 + seed);
    BagGenOptions options;
    options.support_size = 40;
    options.domain_size = 4;
    options.max_multiplicity = 8;
    Hypergraph h = seed % 2 == 0 ? *MakePath(5) : *MakeStar(4);
    BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
    EngineOptions seq;
    EngineOptions par;
    par.num_threads = 8;
    ConsistencyEngine e1 = *ConsistencyEngine::Make(c, seq);
    ConsistencyEngine e2 = *ConsistencyEngine::Make(c, par);
    auto w1 = *e1.SolveGlobalAcyclic();
    auto w2 = *e2.SolveGlobalAcyclic();
    ASSERT_TRUE(w1.has_value());
    ASSERT_TRUE(w2.has_value());
    EXPECT_EQ(*w1, *w2);
    // Either way the result is a genuine witness.
    EXPECT_TRUE(*c.IsWitness(*w1));
  }
}

}  // namespace
}  // namespace bagc
