// Tests for the circulant family — k-uniform k-regular hypergraphs beyond
// Cn and Hn — and the Tseitin construction on them (the construction in
// Theorem 2 Step 2 is stated for arbitrary k-uniform d-regular
// hypergraphs with d >= 2; circulants exercise d = k in between the two
// extremes used in the paper's proof).
#include <gtest/gtest.h>

#include "core/global.h"
#include "core/local_global.h"
#include "core/pairwise.h"
#include "core/tseitin.h"
#include "hypergraph/acyclicity.h"
#include "hypergraph/families.h"

namespace bagc {
namespace {

TEST(CirculantTest, Validation) {
  EXPECT_FALSE(MakeCirculant(3, 1).ok());
  EXPECT_FALSE(MakeCirculant(3, 3).ok());
  EXPECT_TRUE(MakeCirculant(4, 2).ok());
}

TEST(CirculantTest, GeneralizesCycle) {
  EXPECT_EQ(*MakeCirculant(5, 2), *MakeCycle(5));
}

TEST(CirculantTest, UniformRegularAndCyclic) {
  for (size_t n = 4; n <= 9; ++n) {
    for (size_t k = 2; k < n && k <= 4; ++k) {
      Hypergraph h = *MakeCirculant(n, k);
      EXPECT_EQ(h.num_edges(), n) << "circ(" << n << "," << k << ")";
      EXPECT_EQ(*h.UniformityDegree(), k);
      EXPECT_EQ(*h.RegularityDegree(), k);
      EXPECT_FALSE(IsAcyclic(h)) << "circ(" << n << "," << k << ")";
    }
  }
}

class CirculantTseitinTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(CirculantTseitinTest, PairwiseConsistentNotGlobal) {
  auto [n, k] = GetParam();
  Hypergraph h = *MakeCirculant(n, k);
  BagCollection c = *BagCollection::Make(*MakeTseitinCollection(h));
  EXPECT_TRUE(*ArePairwiseConsistent(c)) << "circ(" << n << "," << k << ")";
  EXPECT_FALSE(SolveGlobalConsistencyExact(c)->has_value())
      << "circ(" << n << "," << k << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CirculantTseitinTest,
    ::testing::Values(std::pair<size_t, size_t>{4, 2},
                      std::pair<size_t, size_t>{5, 2},
                      std::pair<size_t, size_t>{5, 3},
                      std::pair<size_t, size_t>{6, 3},
                      std::pair<size_t, size_t>{7, 3},
                      std::pair<size_t, size_t>{6, 4},
                      std::pair<size_t, size_t>{7, 4}));

TEST(CirculantTest, CounterexamplePipelineHandlesCirculants) {
  // MakeCounterexample goes through the obstruction search, NOT the direct
  // Tseitin construction — circulants make it exercise non-trivial
  // minimization (an induced chordless cycle or an Hn core exists inside).
  for (auto [n, k] : {std::pair<size_t, size_t>{6, 3},
                      std::pair<size_t, size_t>{7, 3}}) {
    Hypergraph h = *MakeCirculant(n, k);
    BagCollection c = *MakeCounterexample(h);
    EXPECT_TRUE(*ArePairwiseConsistent(c));
    EXPECT_FALSE(SolveGlobalConsistencyExact(c)->has_value());
  }
}

}  // namespace
}  // namespace bagc
