// Tests for the exact rational simplex — the third route to Lemma 2(3).
// Cross-validates against the closed-form rational solution, the max-flow
// decision, and (for m = 2, by Hoffman–Kruskal total unimodularity) the
// integer solver.
#include <gtest/gtest.h>

#include "core/tseitin.h"
#include "core/two_bag.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "solver/integer_feasibility.h"
#include "solver/simplex.h"
#include "util/random.h"

namespace bagc {
namespace {

// Exact verification that a rational vector satisfies the LP.
bool Satisfies(const ConsistencyLp& lp, const std::vector<Rational>& x) {
  for (const Rational& v : x) {
    if (v.is_negative()) return false;
  }
  for (const LpRow& row : lp.rows) {
    Rational sum;
    for (uint32_t v : row.vars) sum = *Rational::Add(sum, x[v]);
    if (sum != Rational(static_cast<int64_t>(row.rhs))) return false;
  }
  return true;
}

TEST(SimplexTest, FeasibleTwoBagPrograms) {
  Rng rng(501);
  BagGenOptions options;
  options.support_size = 10;
  options.domain_size = 3;
  options.max_multiplicity = 12;
  for (int trial = 0; trial < 25; ++trial) {
    auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    ConsistencyLp lp = *BuildConsistencyLp({r, s});
    SimplexResult res = *SolveRationalFeasibility(lp);
    EXPECT_TRUE(res.feasible);
    EXPECT_TRUE(Satisfies(lp, res.solution));
  }
}

TEST(SimplexTest, InfeasibleTwoBagPrograms) {
  Rng rng(502);
  BagGenOptions options;
  options.support_size = 10;
  options.domain_size = 3;
  for (int trial = 0; trial < 20; ++trial) {
    auto [r, s] =
        *MakeInconsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    ConsistencyLp lp = *BuildConsistencyLp({r, s});
    SimplexResult res = *SolveRationalFeasibility(lp);
    EXPECT_FALSE(res.feasible);
  }
}

TEST(SimplexTest, AgreesWithLemmaTwoRoutes) {
  // Lemma 2: (1) flow route, (2) marginal equality, (3) rational LP —
  // all three must coincide for two bags.
  Rng rng(503);
  BagGenOptions options;
  options.support_size = 8;
  options.domain_size = 3;
  for (int trial = 0; trial < 30; ++trial) {
    bool want_consistent = trial % 2 == 0;
    auto [r, s] = want_consistent
        ? *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng)
        : *MakeInconsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    bool by_marginals = *AreConsistent(r, s);
    bool by_flow = FindWitness(r, s)->has_value();
    ConsistencyLp lp = *BuildConsistencyLp({r, s});
    bool by_simplex = SolveRationalFeasibility(lp)->feasible;
    EXPECT_EQ(by_marginals, by_flow);
    EXPECT_EQ(by_marginals, by_simplex);
  }
}

TEST(SimplexTest, HoffmanKruskalForTwoBags) {
  // For m = 2 the constraint matrix is totally unimodular, so rational
  // feasibility == integer feasibility (Lemma 2 (3) <=> (4)).
  Rng rng(504);
  BagGenOptions options;
  options.support_size = 8;
  options.domain_size = 3;
  for (int trial = 0; trial < 20; ++trial) {
    auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    ConsistencyLp lp = *BuildConsistencyLp({r, s});
    bool rational = SolveRationalFeasibility(lp)->feasible;
    bool integral = SolveIntegerFeasibility(lp)->has_value();
    EXPECT_EQ(rational, integral);
  }
}

TEST(SimplexTest, RationalRelaxationIsNotExactForThreeBags) {
  // For m >= 3 rational feasibility is strictly weaker than integer
  // feasibility. Classic half-integral example on the triangle: three
  // full-support {0,1}^2 bags with all marginals (1,1) but an odd total:
  // R(AB) = S(BC) = T(CA) = {00:1, 01:0...}? Use the parity bags with
  // doubled last bag scaled oddly instead: R = {00:1, 11:1},
  // S = {00:1, 11:1}, T = {01:1, 10:1}: LP feasible at x = 1/2 on the two
  // odd cycles? The join of supports here is empty, so instead use full
  // supports with margins that force half-integrality:
  Bag r = *MakeBag(Schema{{0, 1}},
                   {{{0, 0}, 1}, {{0, 1}, 1}, {{1, 0}, 1}, {{1, 1}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}},
                   {{{0, 0}, 1}, {{0, 1}, 1}, {{1, 0}, 1}, {{1, 1}, 1}});
  Bag t = *MakeBag(Schema{{0, 2}},
                   {{{0, 0}, 1}, {{0, 1}, 1}, {{1, 0}, 1}, {{1, 1}, 1}});
  ConsistencyLp lp = *BuildConsistencyLp({r, s, t});
  SimplexResult res = *SolveRationalFeasibility(lp);
  EXPECT_TRUE(res.feasible);
  // Integer feasibility also holds here (c = a xor b works); the point of
  // this test is that the simplex handles m = 3 programs at all and both
  // solvers agree when both succeed.
  EXPECT_TRUE(SolveIntegerFeasibility(lp)->has_value());
}

TEST(SimplexTest, TseitinTriangleLpInfeasibleViaEmptyJoin) {
  // The Tseitin C3 bags have an *empty* join support: the LP has
  // constraint rows with positive rhs and no variables, hence infeasible
  // even over the rationals.
  std::vector<Bag> bags = *MakeTseitinCollection(*MakeCycle(3));
  ConsistencyLp lp = *BuildConsistencyLp(bags);
  EXPECT_TRUE(lp.variables.empty());
  SimplexResult res = *SolveRationalFeasibility(lp);
  EXPECT_FALSE(res.feasible);
}

TEST(SimplexTest, DegenerateEmptyProgram) {
  // Two empty bags: zero rows would mean trivially feasible with x = 0.
  Bag r(Schema{{0, 1}});
  Bag s(Schema{{1, 2}});
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  SimplexResult res = *SolveRationalFeasibility(lp);
  EXPECT_TRUE(res.feasible);
  EXPECT_TRUE(res.solution.empty());
}

TEST(SimplexTest, PivotCountReported) {
  Rng rng(505);
  BagGenOptions options;
  options.support_size = 12;
  options.domain_size = 3;
  auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  SimplexResult res = *SolveRationalFeasibility(lp);
  EXPECT_TRUE(res.feasible);
  EXPECT_GT(res.pivots, 0u);
}

}  // namespace
}  // namespace bagc
