// Property tests for the interned-value layer: ValueDictionary (per
// attribute), DictionarySet (per collection), and the legacy numeric
// codec that keeps the historical int64 Value API bit-compatible with
// fixed-width uint32 rows.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "tuple/tuple.h"
#include "tuple/value_codec.h"
#include "tuple/value_dictionary.h"
#include "util/random.h"

namespace bagc {
namespace {

TEST(ValueDictionaryTest, IdsAreDenseInFirstInternOrder) {
  ValueDictionary dict;
  std::vector<std::string> values = {"cherry", "apple", "banana", "durian"};
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(*dict.Intern(values[i]), static_cast<ValueId>(i));
  }
  EXPECT_EQ(dict.size(), values.size());
}

TEST(ValueDictionaryTest, ReInternIsIdempotent) {
  ValueDictionary dict;
  ValueId a = *dict.Intern("alpha");
  ValueId b = *dict.Intern("beta");
  EXPECT_EQ(*dict.Intern("alpha"), a);
  EXPECT_EQ(*dict.Intern("beta"), b);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.intern_calls(), 4u);  // calls counted, ids stable
}

TEST(ValueDictionaryTest, LookupIsInverseOfIntern) {
  ValueDictionary dict;
  Rng rng(11);
  std::vector<std::string> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back("v" + std::to_string(rng.Below(1000)) + "_x");
  }
  for (const std::string& v : values) {
    ValueId id = *dict.Intern(v);
    EXPECT_EQ(dict.ExternalOf(id), v);
    ASSERT_TRUE(dict.Find(v).has_value());
    EXPECT_EQ(*dict.Find(v), id);
  }
  EXPECT_FALSE(dict.Find("never-interned").has_value());
}

TEST(ValueDictionaryTest, CanonicalizeIsDeterministicUnderInsertionPermutations) {
  // The same value *set*, interned in 20 different orders, must
  // canonicalize to bit-identical dictionaries (same id for same value).
  std::vector<std::string> values;
  for (int i = 0; i < 50; ++i) values.push_back("tok_" + std::to_string(i * 7));
  ValueDictionary reference;
  for (const std::string& v : values) ASSERT_TRUE(reference.Intern(v).ok());
  reference.Canonicalize();

  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::string> permuted = values;
    rng.Shuffle(&permuted);
    ValueDictionary dict;
    for (const std::string& v : permuted) ASSERT_TRUE(dict.Intern(v).ok());
    dict.Canonicalize();
    ASSERT_EQ(dict.size(), reference.size());
    for (ValueId id = 0; id < dict.size(); ++id) {
      EXPECT_EQ(dict.ExternalOf(id), reference.ExternalOf(id));
    }
    for (const std::string& v : values) {
      EXPECT_EQ(*dict.Find(v), *reference.Find(v));
    }
  }
}

TEST(ValueDictionaryTest, CanonicalizeReturnsConsistentRemap) {
  ValueDictionary dict;
  std::vector<std::string> values = {"zeta", "alpha", "mu"};
  std::vector<ValueId> old_ids;
  for (const std::string& v : values) old_ids.push_back(*dict.Intern(v));
  std::vector<ValueId> remap = dict.Canonicalize();
  ASSERT_EQ(remap.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    // The remapped old id must point at the same external value.
    EXPECT_EQ(dict.ExternalOf(remap[old_ids[i]]), values[i]);
  }
  // Sorted order: alpha < mu < zeta.
  EXPECT_EQ(dict.ExternalOf(0), "alpha");
  EXPECT_EQ(dict.ExternalOf(1), "mu");
  EXPECT_EQ(dict.ExternalOf(2), "zeta");
}

TEST(ValueDictionaryTest, RejectsIdSpaceOverflow) {
  ValueDictionary dict;
  // Pretend all but one id below the reserved sentinel are taken.
  dict.set_id_base_for_test(static_cast<uint64_t>(kInvalidValueId) - 1);
  ASSERT_TRUE(dict.Intern("fits").ok());
  Result<ValueId> overflow = dict.Intern("does-not");
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kArithmeticOverflow);
  // Idempotent re-intern of an existing value still succeeds at the brim.
  EXPECT_TRUE(dict.Intern("fits").ok());
}

TEST(DictionarySetTest, AttributesInternIndependently) {
  DictionarySet dicts;
  ValueId a0 = *dicts.Intern(0, "shared-token");
  ValueId b0 = *dicts.Intern(7, "other");
  ValueId b1 = *dicts.Intern(7, "shared-token");
  EXPECT_EQ(a0, 0u);
  EXPECT_EQ(b0, 0u);  // separate dictionary, fresh id space
  EXPECT_EQ(b1, 1u);
  EXPECT_EQ(dicts.num_dicts(), 2u);
  EXPECT_EQ(dicts.total_size(), 3u);
}

TEST(DictionarySetTest, EncodeDecodeRowRoundTrip) {
  DictionarySet dicts;
  Schema schema{{2, 5}};
  std::vector<std::string> row = {"paris", "berlin"};
  Tuple t = *dicts.EncodeRow(schema, row);
  EXPECT_EQ(t.arity(), 2u);
  EXPECT_EQ(*dicts.DecodeRow(schema, t), row);
  // Same tokens re-encode to the identical fixed-width row.
  EXPECT_EQ(*dicts.EncodeRow(schema, row), t);
  // Arity mismatch and foreign ids are rejected.
  EXPECT_FALSE(dicts.EncodeRow(schema, {"one"}).ok());
  EXPECT_FALSE(dicts.DecodeRow(schema, Tuple::OfIds({99u, 99u})).ok());
}

TEST(ValueCodecTest, DirectRangeEncodesAsItself) {
  for (Value v : {Value{0}, Value{1}, Value{12345}, Value{0x7FFFFFFF}}) {
    EXPECT_TRUE(IsDirectValue(v));
    EXPECT_EQ(EncodeValue(v), static_cast<ValueId>(v));
    EXPECT_EQ(DecodeValue(static_cast<ValueId>(v)), v);
  }
}

TEST(ValueCodecTest, OutOfRangeValuesRoundTripThroughSideTable) {
  std::vector<Value> values = {-1, -4, std::numeric_limits<Value>::min(),
                               std::numeric_limits<Value>::max(), Value{1} << 40};
  for (Value v : values) {
    EXPECT_FALSE(IsDirectValue(v));
    ValueId id = EncodeValue(v);
    EXPECT_GE(id, kDirectValueLimit);
    EXPECT_EQ(DecodeValue(id), v);
    EXPECT_EQ(EncodeValue(v), id);  // stable on re-encode
  }
}

TEST(ValueCodecTest, TuplesBuiltFromValuesDecodeBack) {
  Tuple t{{-4, 5, Value{1} << 35}};
  EXPECT_EQ(t.at(0), -4);
  EXPECT_EQ(t.at(1), 5);
  EXPECT_EQ(t.at(2), Value{1} << 35);
  EXPECT_EQ(t.values(), (std::vector<Value>{-4, 5, Value{1} << 35}));
  // Equal external values => equal rows, hashes, and ordering keys.
  Tuple u{{-4, 5, Value{1} << 35}};
  EXPECT_EQ(t, u);
  EXPECT_EQ(t.Hash(), u.Hash());
  EXPECT_FALSE(t < u);
  EXPECT_FALSE(u < t);
}

// Regression for the side-table ordering caveat: side-table ids are
// issued in first-encode order, so encoding values in descending order
// makes raw-id order the exact REVERSE of value order. Raw-id compares
// on that range would order rows by encode history (and differently in
// every process); ValueIdLess and Tuple::operator< must order by the
// decoded value instead.
TEST(ValueCodecTest, SideTableIdsCompareInValueOrderNotEncodeOrder) {
  // Distinct from every value other codec tests intern: the process-wide
  // side table is shared across tests in this binary.
  const Value lo = -(Value{1} << 41) - 7;
  const Value mid = -(Value{1} << 40) - 7;
  const Value hi = (Value{1} << 41) + 7;
  // Adversarial encode order: descending value.
  ValueId id_hi = EncodeValue(hi);
  ValueId id_mid = EncodeValue(mid);
  ValueId id_lo = EncodeValue(lo);
  // The premise of the regression: raw ids really are value-reversed.
  ASSERT_GT(id_lo, id_mid);
  ASSERT_GT(id_mid, id_hi);

  // ValueIdLess follows the values, not the ids.
  EXPECT_TRUE(ValueIdLess(id_lo, id_mid));
  EXPECT_TRUE(ValueIdLess(id_mid, id_hi));
  EXPECT_TRUE(ValueIdLess(id_lo, id_hi));
  EXPECT_FALSE(ValueIdLess(id_hi, id_mid));
  EXPECT_FALSE(ValueIdLess(id_mid, id_lo));
  EXPECT_FALSE(ValueIdLess(id_lo, id_lo));

  // Mixed direct/side-table: every negative sorts below every direct id,
  // and the direct range keeps its single-compare fast path.
  EXPECT_TRUE(ValueIdLess(id_lo, 0u));
  EXPECT_TRUE(ValueIdLess(id_mid, 3u));
  EXPECT_FALSE(ValueIdLess(id_hi, 3u));  // 2^41+7 > 3
  EXPECT_TRUE(ValueIdLess(2u, 3u));

  // Tuple ordering routes side-table slots through the same comparator:
  // rows sort by external value even though their raw ids reverse it.
  Tuple a{{lo, Value{1}}};
  Tuple b{{mid, Value{1}}};
  Tuple c{{hi, Value{1}}};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(c < b);
  EXPECT_FALSE(b < a);
}

}  // namespace
}  // namespace bagc
