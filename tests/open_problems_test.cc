// Reproductions of the §6 "Concluding Remarks": executable demonstrations
// of WHY the open problems are open.
//
//  1. The bag-join of a globally consistent collection need not witness
//     its consistency (the obstacle to defining a full reducer for bags).
//  2. Natural candidate "bag semijoin" operators fail to produce a full
//     reducer: reducing each bag against its neighbors does not converge
//     to the marginals of a witness the way set semijoins do.
#include <gtest/gtest.h>

#include "core/collection.h"
#include "core/global.h"
#include "core/pairwise.h"
#include "core/two_bag.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "util/random.h"

namespace bagc {
namespace {

TEST(OpenProblemsTest, BagJoinOfConsistentCollectionIsNotAWitness) {
  // §6 first obstacle, quantified over random globally consistent
  // collections: the bag join J = R1 ⋈_b ... ⋈_b Rm essentially never
  // marginalizes back onto the Ri (multiplicities multiply along join
  // paths instead of staying calibrated).
  Rng rng(901);
  BagGenOptions options;
  options.support_size = 8;
  options.domain_size = 2;
  options.max_multiplicity = 3;
  int join_witnessed = 0, trials = 0;
  for (int trial = 0; trial < 25; ++trial) {
    Hypergraph h = *MakePath(3);
    BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
    bool degenerate = false;
    for (const Bag& b : c.bags()) degenerate |= b.IsEmpty();
    if (degenerate) continue;
    ++trials;
    Bag join = *Bag::Join(c.bag(0), c.bag(1));
    if (*c.IsWitness(join)) ++join_witnessed;
    // The Theorem 6 witness exists regardless.
    EXPECT_TRUE(SolveGlobalConsistencyAcyclic(c)->has_value());
  }
  ASSERT_GT(trials, 10);
  // The join can coincidentally witness only in degenerate cases (e.g.
  // all shared marginals concentrated on single tuples of multiplicity 1).
  EXPECT_LT(join_witnessed, trials / 2)
      << "bag join witnessed far too often - §6 obstacle not reproduced";
}

// Candidate bag semijoin #1: cap multiplicities by the neighbor's
// shared-marginal (R ⋉_b S)(t) = min(R(t), S[Z](t[Z])).
Result<Bag> SemijoinMin(const Bag& r, const Bag& s) {
  Schema z = Schema::Intersect(r.schema(), s.schema());
  BAGC_ASSIGN_OR_RETURN(Bag sz, s.Marginal(z));
  BAGC_ASSIGN_OR_RETURN(Projector proj, Projector::Make(r.schema(), z));
  Bag out(r.schema());
  for (const auto& [t, m] : r.entries()) {
    uint64_t cap = sz.Multiplicity(t.Project(proj));
    BAGC_RETURN_NOT_OK(out.Set(t, std::min(m, cap)));
  }
  return out;
}

TEST(OpenProblemsTest, MinSemijoinIsNotAFullReducerForBags) {
  // For sets, one bottom-up + one top-down semijoin pass over a join tree
  // makes every relation equal to the corresponding projection of the
  // join ("full reduction"). The min-capped bag analogue fails: there are
  // *pairwise consistent* acyclic bag collections where the min-semijoin
  // changes nothing (every tuple is locally supported), yet the bags are
  // not the marginals of the bag join — so the semijoin fixpoint does not
  // certify anything about multiplicities.
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}, {{1, 0}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}, {{0, 1}, 1}});
  BagCollection c = *BagCollection::Make({r, s});
  ASSERT_TRUE(*ArePairwiseConsistent(c));
  // The min-semijoin is already at fixpoint in both directions...
  EXPECT_EQ(*SemijoinMin(r, s), r);
  EXPECT_EQ(*SemijoinMin(s, r), s);
  // ...but the bag join does NOT marginalize back onto r and s (every
  // multiplicity doubles), so "fully reduced" does not mean "join
  // projects back" — the set-case contract a full reducer relies on.
  Bag join = *Bag::Join(r, s);
  EXPECT_NE(*join.Marginal(r.schema()), r);
  EXPECT_FALSE(*IsWitness(join, r, s));
  // A genuine witness exists (the bags ARE consistent); it just is not
  // the join, and no semijoin-style local pass computes its marginals.
  EXPECT_TRUE(FindWitness(r, s)->has_value());
}

TEST(OpenProblemsTest, MinSemijoinCanDestroyConsistency) {
  // Worse: applying the min-capped semijoin to a *consistent* pair can
  // break consistency — the operator is not even sound as a reducer.
  // R has a tuple whose multiplicity exceeds its shared-marginal cap from
  // S only via aggregation: R(AB) = {(0,0):2}, S(BC) = {(0,0):1, (0,1):1}.
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 2}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}, {{0, 1}, 1}});
  ASSERT_TRUE(*AreConsistent(r, s));
  // Capping R(0,0) by S[B](0) = 2 is a no-op, but capping S's tuples by
  // R[B](0) = 2 is also a no-op — fine here. Cap instead by the *tuple
  // level* of the other side's marginal on the FULL intersection... use
  // the asymmetric pair: T(AB) = {(0,0):1,(1,0):1}, U(BC) = {(0,0):2}:
  Bag t = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}, {{1, 0}, 1}});
  Bag u = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 2}});
  ASSERT_TRUE(*AreConsistent(t, u));
  // Capping u's (0,0) by t's per-tuple multiplicities (a per-tuple
  // semijoin in the set spirit: keep min with the MAX matching tuple,
  // i.e. 1) would yield {(0,0):1} — now INCONSISTENT with t.
  Bag u_reduced = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}});
  EXPECT_FALSE(*AreConsistent(t, u_reduced));
}

TEST(OpenProblemsTest, MonotoneSequentialJoinExpressionObstacle) {
  // §6 also asks for a "monotone sequential join expression" analogue.
  // Monotonicity fails at the first hurdle: bag-join is monotone w.r.t.
  // bag containment, but *witness extraction* is not — growing an input
  // bag can shrink every witness's support.
  Bag r1 = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}, {{0, 1}, 1}});
  // r1 is inconsistent with s (cardinality 1 vs 2): no witness at all.
  EXPECT_FALSE(FindWitness(r1, s)->has_value());
  // Growing r1 to r2 ⊇ r1 restores consistency with witness support 2.
  Bag r2 = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 2}});
  EXPECT_TRUE(Bag::Contained(r1, r2));
  auto w2 = *FindWitness(r2, s);
  ASSERT_TRUE(w2.has_value());
  // And growing further to r3 changes the witness *set* non-monotonically:
  // the unique-witness structure from r2 disappears.
  Bag r3 = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 2}, {{1, 0}, 2}});
  EXPECT_TRUE(Bag::Contained(r2, r3));
  EXPECT_FALSE(FindWitness(r3, s)->has_value());  // cardinalities diverge again
}

}  // namespace
}  // namespace bagc
