// Unit and property tests for the hypergraph substrate: primal graphs,
// chordality, conformality, GYO, join trees, running intersection, safe
// deletions, and the Pn/Cn/Hn families. The property sweeps check the
// Theorem 1/2 equivalences (a) <=> (b) <=> (c) <=> (d) across random
// hypergraphs.
#include <gtest/gtest.h>

#include "hypergraph/acyclicity.h"
#include "hypergraph/chordality.h"
#include "hypergraph/conformality.h"
#include "hypergraph/families.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/safe_deletion.h"
#include "util/random.h"

namespace bagc {
namespace {

TEST(HypergraphTest, MakeValidation) {
  EXPECT_FALSE(Hypergraph::Make(Schema{{0}}, {Schema{}}).ok());
  EXPECT_FALSE(Hypergraph::Make(Schema{{0}}, {Schema{{1}}}).ok());
  Hypergraph h = *Hypergraph::FromEdges({Schema{{0, 1}}, Schema{{1, 2}}});
  EXPECT_EQ(h.num_vertices(), 3u);
  EXPECT_EQ(h.num_edges(), 2u);
}

TEST(HypergraphTest, EdgesAreDeduplicated) {
  Hypergraph h = *Hypergraph::FromEdges({Schema{{0, 1}}, Schema{{1, 0}}});
  EXPECT_EQ(h.num_edges(), 1u);
}

TEST(HypergraphTest, VertexDegreeAndPrimalGraph) {
  Hypergraph h = *Hypergraph::FromEdges({Schema{{0, 1, 2}}, Schema{{2, 3}}});
  EXPECT_EQ(h.VertexDegree(2), 2u);
  EXPECT_EQ(h.VertexDegree(0), 1u);
  Graph g = h.PrimalGraph();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(HypergraphTest, ReductionDropsCoveredEdges) {
  Hypergraph h =
      *Hypergraph::FromEdges({Schema{{0, 1}}, Schema{{0, 1, 2}}, Schema{{3, 4}}});
  Hypergraph r = h.Reduction();
  EXPECT_EQ(r.num_edges(), 2u);
  EXPECT_FALSE(h.IsReduced());
  EXPECT_TRUE(r.IsReduced());
  EXPECT_TRUE(h.EdgeIsCovered(Schema{{0, 1}}));
  EXPECT_FALSE(h.EdgeIsCovered(Schema{{3, 4}}));
  EXPECT_FALSE(h.EdgeIsCovered(Schema{{9}}));  // not an edge
}

TEST(HypergraphTest, InduceAndDeleteVertex) {
  Hypergraph h = *Hypergraph::FromEdges({Schema{{0, 1, 2}}, Schema{{2, 3}}});
  Hypergraph ind = h.Induce(Schema{{0, 1, 3}});
  EXPECT_EQ(ind.num_vertices(), 3u);
  // Edges: {0,1} and {3}.
  EXPECT_EQ(ind.num_edges(), 2u);
  Hypergraph del = h.DeleteVertex(2);
  EXPECT_EQ(del, ind);
}

TEST(HypergraphTest, UniformityAndRegularity) {
  Hypergraph c4 = *MakeCycle(4);
  EXPECT_EQ(*c4.UniformityDegree(), 2u);
  EXPECT_EQ(*c4.RegularityDegree(), 2u);
  Hypergraph h5 = *MakeHn(5);
  EXPECT_EQ(*h5.UniformityDegree(), 4u);
  EXPECT_EQ(*h5.RegularityDegree(), 4u);
  Hypergraph p3 = *MakePath(3);
  EXPECT_EQ(*p3.UniformityDegree(), 2u);
  EXPECT_FALSE(p3.RegularityDegree().has_value());  // ends have degree 1
}

TEST(HypergraphTest, MatchCycle) {
  Hypergraph c5 = *MakeCycle(5);
  auto order = c5.MatchCycle();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), 5u);
  // Consecutive vertices in the enumeration must form edges.
  for (size_t i = 0; i < 5; ++i) {
    Schema e{{(*order)[i], (*order)[(i + 1) % 5]}};
    EXPECT_NE(std::find(c5.edges().begin(), c5.edges().end(), e), c5.edges().end());
  }
  EXPECT_FALSE(MakePath(4)->MatchCycle().has_value());
  EXPECT_FALSE(MakeHn(4)->MatchCycle().has_value());
}

TEST(HypergraphTest, MatchHn) {
  Hypergraph h4 = *MakeHn(4);
  auto enumeration = h4.MatchHn();
  ASSERT_TRUE(enumeration.has_value());
  EXPECT_EQ(enumeration->size(), 4u);
  EXPECT_FALSE(MakeCycle(4)->MatchHn().has_value());
  // H3 == C3: both matchers succeed.
  Hypergraph h3 = *MakeHn(3);
  EXPECT_TRUE(h3.MatchHn().has_value());
  EXPECT_TRUE(h3.MatchCycle().has_value());
  EXPECT_EQ(*MakeCycle(3), h3);
}

// ---- Chordality ----

TEST(ChordalityTest, PathsAndCliquesAreChordal) {
  EXPECT_TRUE(IsChordal(*MakePath(6)));
  Hypergraph clique = *Hypergraph::FromEdges({Schema{{0, 1, 2, 3}}});
  EXPECT_TRUE(IsChordal(clique));
}

TEST(ChordalityTest, CyclesAreNotChordalFromFour) {
  EXPECT_TRUE(IsChordal(*MakeCycle(3)));  // triangle is chordal
  for (size_t n = 4; n <= 9; ++n) {
    EXPECT_FALSE(IsChordal(*MakeCycle(n))) << "C" << n;
  }
}

TEST(ChordalityTest, HnIsChordal) {
  // Hn's primal graph is complete, hence chordal (paper: Hn is chordal but
  // not conformal for n >= 4).
  for (size_t n = 3; n <= 7; ++n) {
    EXPECT_TRUE(IsChordal(*MakeHn(n))) << "H" << n;
  }
}

TEST(ChordalityTest, ChordedCycleIsChordal) {
  // C4 plus a chord {0, 2}.
  Hypergraph h = *Hypergraph::FromEdges(
      {Schema{{0, 1}}, Schema{{1, 2}}, Schema{{2, 3}}, Schema{{3, 0}},
       Schema{{0, 2}}});
  EXPECT_TRUE(IsChordal(h));
}

TEST(ChordalityTest, LexBfsVisitsAllVertices) {
  Graph g = MakeCycle(6)->PrimalGraph();
  auto order = LexBfsOrder(g);
  EXPECT_EQ(order.size(), 6u);
  std::set<size_t> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 6u);
}

// ---- Conformality ----

TEST(ConformalityTest, PaperExamples) {
  // Pn conformal; C3 = H3 not conformal; Cn (n>=4) conformal; Hn (n>=4)
  // not conformal. (Paper §4, after Equations (4)-(6).)
  EXPECT_TRUE(IsConformal(*MakePath(5)));
  EXPECT_FALSE(IsConformal(*MakeCycle(3)));
  for (size_t n = 4; n <= 8; ++n) {
    EXPECT_TRUE(IsConformal(*MakeCycle(n))) << "C" << n;
    EXPECT_FALSE(IsConformal(*MakeHn(n))) << "H" << n;
  }
}

TEST(ConformalityTest, GilmoreAgreesWithMaximalCliques) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    size_t n = 3 + rng.Below(5);
    size_t k = 2 + rng.Below(std::min<size_t>(n - 1, 3));
    size_t m = 2 + rng.Below(5);
    auto h = MakeRandomUniform(n, k, m, &rng);
    if (!h.ok()) continue;
    EXPECT_EQ(IsConformal(*h), IsConformalByCliques(*h)) << h->ToString();
  }
}

TEST(ConformalityTest, MaximalCliquesOfTriangle) {
  Graph g = MakeCycle(3)->PrimalGraph();
  auto cliques = MaximalCliques(g);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (std::vector<size_t>{0, 1, 2}));
}

// ---- Acyclicity, join trees, running intersection ----

TEST(AcyclicityTest, Families) {
  for (size_t n = 2; n <= 8; ++n) {
    EXPECT_TRUE(IsAcyclicGyo(*MakePath(n))) << "P" << n;
  }
  for (size_t n = 3; n <= 8; ++n) {
    EXPECT_FALSE(IsAcyclicGyo(*MakeCycle(n))) << "C" << n;
    EXPECT_FALSE(IsAcyclicGyo(*MakeHn(n))) << "H" << n;
  }
  EXPECT_TRUE(IsAcyclicGyo(*MakeStar(5)));
}

TEST(AcyclicityTest, GyoTraceIsNonEmptyForAcyclic) {
  std::vector<GyoStep> trace;
  EXPECT_TRUE(IsAcyclicGyo(*MakePath(4), &trace));
  EXPECT_FALSE(trace.empty());
}

TEST(AcyclicityTest, ConformalChordalEquivalence) {
  // Theorem 1 (a) <=> (b) on the families and random hypergraphs.
  Rng rng(5);
  for (int trial = 0; trial < 80; ++trial) {
    Hypergraph h = *MakeRandomAcyclic(1 + rng.Below(8), 1 + rng.Below(4), &rng);
    EXPECT_TRUE(IsAcyclicGyo(h)) << h.ToString();
    EXPECT_TRUE(IsAcyclicByConformalChordal(h)) << h.ToString();
  }
  for (int trial = 0; trial < 60; ++trial) {
    size_t n = 3 + rng.Below(5);
    size_t k = 2 + rng.Below(std::min<size_t>(n - 1, 3));
    size_t m = 2 + rng.Below(6);
    auto h = MakeRandomUniform(n, k, m, &rng);
    if (!h.ok()) continue;
    EXPECT_EQ(IsAcyclicGyo(*h), IsAcyclicByConformalChordal(*h)) << h->ToString();
  }
}

TEST(AcyclicityTest, JoinTreeExistsIffAcyclic) {
  // Theorem 1 (a) <=> (d).
  Rng rng(6);
  for (int trial = 0; trial < 60; ++trial) {
    size_t n = 3 + rng.Below(5);
    size_t k = 2 + rng.Below(std::min<size_t>(n - 1, 3));
    size_t m = 2 + rng.Below(6);
    auto h = MakeRandomUniform(n, k, m, &rng);
    if (!h.ok()) continue;
    auto jt = BuildJoinTree(*h);
    EXPECT_EQ(jt.ok(), IsAcyclicGyo(*h)) << h->ToString();
    if (jt.ok()) {
      EXPECT_TRUE(jt->Verify());
    }
  }
}

TEST(AcyclicityTest, JoinTreeOfPath) {
  JoinTree jt = *BuildJoinTree(*MakePath(5));
  EXPECT_EQ(jt.nodes.size(), 4u);
  EXPECT_EQ(jt.tree_edges.size(), 3u);
  EXPECT_TRUE(jt.Verify());
}

TEST(AcyclicityTest, JoinTreeSingleEdge) {
  JoinTree jt = *BuildJoinTree(*Hypergraph::FromEdges({Schema{{0, 1, 2}}}));
  EXPECT_EQ(jt.nodes.size(), 1u);
  EXPECT_TRUE(jt.tree_edges.empty());
  EXPECT_TRUE(jt.Verify());
}

TEST(AcyclicityTest, JoinTreeVerifyRejectsBadTree) {
  // A star {0,1},{0,2},{1,2}... take C3's edges with a path-shaped "tree":
  // vertex 0 appears in nodes {01} and {02} — fine — but vertex 2 appears
  // in {12} and {02} which are non-adjacent in the path {01}-{12}, {01}-{02}?
  JoinTree jt;
  jt.nodes = {Schema{{0, 1}}, Schema{{1, 2}}, Schema{{0, 2}}};
  jt.tree_edges = {{0, 1}, {0, 2}};
  // Vertex 2 is in nodes 1 and 2, which are not adjacent and not connected
  // within {1, 2}: must fail.
  EXPECT_FALSE(jt.Verify());
}

TEST(AcyclicityTest, RunningIntersectionOrder) {
  // Theorem 1 (a) <=> (c): acyclic hypergraphs admit a RIP listing and the
  // construction's output always verifies.
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    Hypergraph h = *MakeRandomAcyclic(1 + rng.Below(10), 1 + rng.Below(4), &rng);
    auto order = RunningIntersectionOrder(h);
    ASSERT_TRUE(order.ok()) << h.ToString();
    EXPECT_TRUE(VerifyRunningIntersection(h, *order)) << h.ToString();
  }
  EXPECT_FALSE(RunningIntersectionOrder(*MakeCycle(4)).ok());
}

TEST(AcyclicityTest, VerifyRunningIntersectionRejectsBadOrders) {
  Hypergraph h = *MakePath(4);  // edges {01},{12},{23}
  EXPECT_TRUE(VerifyRunningIntersection(h, {0, 1, 2}));
  EXPECT_FALSE(VerifyRunningIntersection(h, {0, 2, 1}));  // {12} ∩ {01,23} ⊄ one
  EXPECT_FALSE(VerifyRunningIntersection(h, {0, 1}));     // not a permutation
  EXPECT_FALSE(VerifyRunningIntersection(h, {0, 0, 1}));  // repeated index
}

// ---- Safe deletions & Lemma 3 ----

TEST(SafeDeletionTest, ApplyValidatesOperations) {
  Hypergraph h = *Hypergraph::FromEdges({Schema{{0, 1}}, Schema{{0, 1, 2}}});
  // {0,1} is covered: deleting it is safe.
  auto ok = ApplySafeDeletions(h, {SafeDeletion::CoveredEdge(Schema{{0, 1}})});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_edges(), 1u);
  // {0,1,2} is not covered.
  EXPECT_FALSE(
      ApplySafeDeletions(h, {SafeDeletion::CoveredEdge(Schema{{0, 1, 2}})}).ok());
  // Deleting an absent vertex is invalid.
  EXPECT_FALSE(ApplySafeDeletions(h, {SafeDeletion::Vertex(9)}).ok());
  // Vertex deletion is always safe for present vertices.
  EXPECT_TRUE(ApplySafeDeletions(h, {SafeDeletion::Vertex(2)}).ok());
}

TEST(SafeDeletionTest, ObstructionOnCycleIsItself) {
  Hypergraph c5 = *MakeCycle(5);
  Obstruction obs = *FindObstruction(c5);
  EXPECT_FALSE(obs.is_hn);
  EXPECT_EQ(obs.w.arity(), 5u);
  EXPECT_EQ(obs.minimal, c5);
  EXPECT_TRUE(obs.sequence.empty());
}

TEST(SafeDeletionTest, ObstructionOnHnIsItself) {
  Hypergraph h4 = *MakeHn(4);
  Obstruction obs = *FindObstruction(h4);
  EXPECT_TRUE(obs.is_hn);
  EXPECT_EQ(obs.minimal, h4);
}

TEST(SafeDeletionTest, TriangleYieldsH3) {
  // C3 = H3 is non-conformal; the obstruction search reports Hn-type.
  Obstruction obs = *FindObstruction(*MakeCycle(3));
  EXPECT_TRUE(obs.is_hn);
  EXPECT_EQ(obs.enumeration.size(), 3u);
}

TEST(SafeDeletionTest, AcyclicHasNoObstruction) {
  auto result = FindObstruction(*MakePath(5));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SafeDeletionTest, ObstructionSequenceReachesMinimal) {
  // A C4 with a pendant edge and a covering edge: the sequence of safe
  // deletions must transform H into R(H[W]).
  Hypergraph h = *Hypergraph::FromEdges({Schema{{0, 1}}, Schema{{1, 2}},
                                         Schema{{2, 3}}, Schema{{3, 0}},
                                         Schema{{2, 4}}, Schema{{0}}});
  ASSERT_FALSE(IsAcyclicGyo(h));
  Obstruction obs = *FindObstruction(h);
  Hypergraph reached = *ApplySafeDeletions(h, obs.sequence);
  EXPECT_EQ(reached.edges(), obs.minimal.edges());
  if (!obs.is_hn) {
    EXPECT_GE(obs.enumeration.size(), 4u);
  } else {
    EXPECT_GE(obs.enumeration.size(), 3u);
  }
}

TEST(SafeDeletionTest, RandomCyclicAlwaysYieldsValidObstruction) {
  Rng rng(99);
  int found = 0;
  for (int trial = 0; trial < 80 && found < 25; ++trial) {
    size_t n = 4 + rng.Below(4);
    size_t k = 2 + rng.Below(std::min<size_t>(n - 1, 3));
    size_t m = 3 + rng.Below(5);
    auto h = MakeRandomUniform(n, k, m, &rng);
    if (!h.ok() || IsAcyclicGyo(*h)) continue;
    ++found;
    Obstruction obs = *FindObstruction(*h);
    // The minimal hypergraph matches its advertised family.
    if (obs.is_hn) {
      EXPECT_TRUE(obs.minimal.MatchHn().has_value());
    } else {
      EXPECT_TRUE(obs.minimal.MatchCycle().has_value());
      EXPECT_GE(obs.enumeration.size(), 4u);
    }
    // The safe-deletion sequence replays to the minimal hypergraph.
    Hypergraph reached = *ApplySafeDeletions(*h, obs.sequence);
    EXPECT_EQ(reached.edges(), obs.minimal.edges());
  }
  EXPECT_GE(found, 10);
}

// ---- Families ----

TEST(FamiliesTest, Validation) {
  EXPECT_FALSE(MakePath(1).ok());
  EXPECT_FALSE(MakeCycle(2).ok());
  EXPECT_FALSE(MakeHn(2).ok());
  EXPECT_FALSE(MakeStar(0).ok());
}

TEST(FamiliesTest, RandomAcyclicIsAcyclic) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    Hypergraph h = *MakeRandomAcyclic(1 + rng.Below(12), 1 + rng.Below(5), &rng);
    EXPECT_TRUE(IsAcyclicGyo(h)) << h.ToString();
  }
}

TEST(FamiliesTest, RandomUniformHasRequestedShape) {
  Rng rng(32);
  Hypergraph h = *MakeRandomUniform(8, 3, 5, &rng);
  EXPECT_EQ(h.num_edges(), 5u);
  EXPECT_EQ(*h.UniformityDegree(), 3u);
  EXPECT_FALSE(MakeRandomUniform(4, 5, 1, &rng).ok());
  EXPECT_FALSE(MakeRandomUniform(4, 2, 100, &rng).ok());
}

}  // namespace
}  // namespace bagc
