// Regression tests for the flat bag storage refactor: the deterministic
// iteration contract (flat sorted vector == old sorted-map order), the
// Tup(∅) empty-schema corner, multiplicity-overflow rejection in the
// mutators / join / builder seal, and the TupleIndex hash-join substrate.
#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "bag/bag.h"
#include "bag/krelation.h"
#include "generators/workloads.h"
#include "tuple/tuple_index.h"
#include "util/random.h"

namespace bagc {
namespace {

constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();

// ---- Deterministic iteration order ----------------------------------------

TEST(FlatStorageTest, IterationOrderMatchesSortedMapOrder) {
  Rng rng(2024);
  Schema x{{0, 1, 2}};
  BagGenOptions options;
  options.support_size = 200;
  options.domain_size = 5;
  Bag bag = *MakeRandomBag(x, options, &rng);
  ASSERT_FALSE(bag.IsEmpty());

  // Reference: the exact container the pre-refactor Bag used.
  std::map<Tuple, uint64_t> reference(bag.entries().begin(), bag.entries().end());
  ASSERT_EQ(reference.size(), bag.SupportSize());
  size_t i = 0;
  for (const auto& [t, mult] : reference) {
    EXPECT_EQ(bag.entries()[i].first, t);
    EXPECT_EQ(bag.entries()[i].second, mult);
    ++i;
  }
}

TEST(FlatStorageTest, IncrementalMutationKeepsSortedInvariant) {
  Bag bag(Schema{{0, 1}});
  // Insert in descending order; storage must come out ascending.
  for (int64_t v = 9; v >= 0; --v) {
    ASSERT_TRUE(bag.Add(Tuple{{v, v + 10}}, static_cast<uint64_t>(v + 1)).ok());
  }
  ASSERT_EQ(bag.SupportSize(), 10u);
  for (size_t i = 0; i + 1 < bag.entries().size(); ++i) {
    EXPECT_TRUE(bag.entries()[i].first < bag.entries()[i + 1].first);
  }
  // Random-access entry(i) agrees with iteration.
  EXPECT_EQ(bag.entry(0).first, (Tuple{{0, 10}}));
  EXPECT_EQ(bag.entry(9).first, (Tuple{{9, 19}}));
  // Erase via Set(t, 0) keeps order.
  ASSERT_TRUE(bag.Set(Tuple{{5, 15}}, 0).ok());
  EXPECT_EQ(bag.SupportSize(), 9u);
  EXPECT_EQ(bag.Multiplicity(Tuple{{5, 15}}), 0u);
  EXPECT_EQ(bag.Multiplicity(Tuple{{6, 16}}), 7u);
}

TEST(FlatStorageTest, BuilderAgreesWithIncrementalConstruction) {
  Rng rng(7);
  Schema x{{3, 5}};
  Bag incremental(x);
  BagBuilder builder(x);
  for (size_t i = 0; i < 100; ++i) {
    Tuple t{{static_cast<Value>(rng.Below(7)), static_cast<Value>(rng.Below(7))}};
    uint64_t mult = rng.Range(1, 4);
    ASSERT_TRUE(incremental.Add(t, mult).ok());
    ASSERT_TRUE(builder.Add(t, mult).ok());
  }
  Bag sealed = *builder.Build();
  EXPECT_EQ(sealed, incremental);
}

// ---- Tup(∅): the empty-schema bag -----------------------------------------

TEST(FlatStorageTest, EmptySchemaBagHoldsTheEmptyTuple) {
  Bag scalar(Schema{});
  Tuple empty{};
  EXPECT_EQ(scalar.Multiplicity(empty), 0u);
  ASSERT_TRUE(scalar.Set(empty, 42).ok());
  EXPECT_EQ(scalar.SupportSize(), 1u);
  EXPECT_EQ(scalar.Multiplicity(empty), 42u);
  ASSERT_TRUE(scalar.Add(empty, 8).ok());
  EXPECT_EQ(scalar.Multiplicity(empty), 50u);
  // Marginal onto ∅ is the identity here.
  Bag again = *scalar.Marginal(Schema{});
  EXPECT_EQ(again, scalar);
  // And a builder over the empty schema merges everything into one entry.
  BagBuilder builder(Schema{});
  ASSERT_TRUE(builder.Add(empty, 1).ok());
  ASSERT_TRUE(builder.Add(empty, 2).ok());
  Bag merged = *builder.Build();
  EXPECT_EQ(merged.Multiplicity(empty), 3u);
}

// ---- Overflow rejection ----------------------------------------------------

TEST(FlatStorageTest, AddOverflowRejectedAndStateUnchanged) {
  Bag bag(Schema{{0}});
  Tuple t{{1}};
  ASSERT_TRUE(bag.Set(t, kMax).ok());
  EXPECT_FALSE(bag.Add(t, 1).ok());
  EXPECT_EQ(bag.Multiplicity(t), kMax);
  EXPECT_EQ(bag.SupportSize(), 1u);
}

TEST(FlatStorageTest, JoinOverflowRejected) {
  Bag r(Schema{{0, 1}});
  Bag s(Schema{{1, 2}});
  ASSERT_TRUE(r.Set(Tuple{{1, 2}}, kMax).ok());
  ASSERT_TRUE(s.Set(Tuple{{2, 3}}, 2).ok());
  EXPECT_FALSE(Bag::Join(r, s).ok());
}

TEST(FlatStorageTest, BuilderSealOverflowRejected) {
  BagBuilder builder(Schema{{0}});
  ASSERT_TRUE(builder.Add(Tuple{{1}}, kMax).ok());
  ASSERT_TRUE(builder.Add(Tuple{{1}}, 1).ok());
  EXPECT_FALSE(builder.Build().ok());
  // A failed seal discards the pending rows; the builder is reusable and
  // must not leak partially merged state.
  ASSERT_TRUE(builder.Add(Tuple{{7}}, 3).ok());
  Bag bag = *builder.Build();
  EXPECT_EQ(bag.SupportSize(), 1u);
  EXPECT_EQ(bag.Multiplicity(Tuple{{7}}), 3u);
}

TEST(FlatStorageTest, BuilderDropsZeroRowsAndChecksArity) {
  BagBuilder builder(Schema{{0, 1}});
  ASSERT_TRUE(builder.Add(Tuple{{1, 2}}, 0).ok());
  EXPECT_FALSE(builder.Add(Tuple{{1}}, 3).ok());
  Bag bag = *builder.Build();
  EXPECT_TRUE(bag.IsEmpty());
}

// ---- KRelation flat storage ------------------------------------------------

TEST(FlatStorageTest, KRelationEntriesStaySorted) {
  KRelation<CountingSemiring> k(Schema{{0}});
  for (int64_t v = 5; v >= 0; --v) {
    ASSERT_TRUE(k.Set(Tuple{{v}}, static_cast<uint64_t>(v + 1)).ok());
  }
  for (size_t i = 0; i + 1 < k.entries().size(); ++i) {
    EXPECT_TRUE(k.entries()[i].first < k.entries()[i + 1].first);
  }
  EXPECT_EQ(k.At(Tuple{{3}}), 4u);
  ASSERT_TRUE(k.Accumulate(Tuple{{3}}, 10).ok());
  EXPECT_EQ(k.At(Tuple{{3}}), 14u);
  ASSERT_TRUE(k.Set(Tuple{{3}}, 0).ok());
  EXPECT_EQ(k.SupportSize(), 5u);
}

// ---- TupleIndex ------------------------------------------------------------

TEST(TupleIndexTest, GroupsEqualKeysInInsertionOrder) {
  TupleIndex index;
  index.Insert(Tuple{{1, 1}}, 0);
  index.Insert(Tuple{{2, 2}}, 1);
  index.Insert(Tuple{{1, 1}}, 2);
  index.Insert(Tuple{{1, 1}}, 3);
  ASSERT_EQ(index.NumGroups(), 2u);
  EXPECT_EQ(index.size(), 4u);
  const std::vector<uint32_t>* ones = index.Find(Tuple{{1, 1}});
  ASSERT_NE(ones, nullptr);
  EXPECT_EQ(*ones, (std::vector<uint32_t>{0, 2, 3}));
  const std::vector<uint32_t>* twos = index.Find(Tuple{{2, 2}});
  ASSERT_NE(twos, nullptr);
  EXPECT_EQ(*twos, (std::vector<uint32_t>{1}));
  EXPECT_EQ(index.Find(Tuple{{3, 3}}), nullptr);
  // Group order is first-insertion order.
  EXPECT_EQ(index.GroupKey(0), (Tuple{{1, 1}}));
  EXPECT_EQ(index.GroupKey(1), (Tuple{{2, 2}}));
}

TEST(TupleIndexTest, SurvivesRehashWithManyKeys) {
  TupleIndex index;
  constexpr size_t kKeys = 5000;
  for (size_t i = 0; i < kKeys; ++i) {
    index.Insert(Tuple{{static_cast<Value>(i), static_cast<Value>(i % 13)}},
                 static_cast<uint32_t>(i));
  }
  ASSERT_EQ(index.NumGroups(), kKeys);
  for (size_t i = 0; i < kKeys; i += 97) {
    const std::vector<uint32_t>* ids =
        index.Find(Tuple{{static_cast<Value>(i), static_cast<Value>(i % 13)}});
    ASSERT_NE(ids, nullptr);
    ASSERT_EQ(ids->size(), 1u);
    EXPECT_EQ((*ids)[0], static_cast<uint32_t>(i));
  }
}

TEST(TupleIndexTest, EmptyIndexFindsNothing) {
  TupleIndex index;
  EXPECT_EQ(index.Find(Tuple{{1}}), nullptr);
  EXPECT_EQ(index.NumGroups(), 0u);
  // Empty-tuple keys (Tup(∅) projections) are valid keys.
  index.Insert(Tuple{}, 7);
  const std::vector<uint32_t>* ids = index.Find(Tuple{});
  ASSERT_NE(ids, nullptr);
  EXPECT_EQ(*ids, (std::vector<uint32_t>{7}));
}

}  // namespace
}  // namespace bagc
