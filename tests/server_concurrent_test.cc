// Concurrent-session differential for the bagcd server: N clients over
// real sockets issue mixed queries (TWOBAG / PAIRWISE / GLOBAL / KWISE /
// WITNESS) against one shared sealed engine, and every verdict, failing
// pair, failing subset, and witness (down to its multiplicities) must be
// bit-identical to the single-shot core/ path computed locally on the
// same interned collection. A second scenario thrashes RESET/re-SEAL
// generation swaps under live query load: in-flight queries must finish
// on the generation they started with — every answer is either the
// expected verdict or the documented E_STATE gap, never a wrong verdict
// and never a torn response. Runs under the ASan/UBSan matrix leg via
// the `differential` ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bag/bag_io.h"
#include "core/global.h"
#include "core/pairwise.h"
#include "core/two_bag.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "server/bagcd_server.h"
#include "server/client.h"
#include "server/session.h"
#include "util/random.h"

namespace bagc {
namespace {

// A numeric generator collection re-skinned as string data: every value
// becomes a per-attribute token interned through one shared
// DictionarySet, so the local collection and the one the server builds
// from DICT + LOADU32 streams are id-identical by construction.
struct StringCollection {
  BagCollection collection;
  AttributeCatalog catalog;
  std::shared_ptr<DictionarySet> dicts;
  std::vector<std::string> names;
};

std::string Token(AttrId a, Value v) {
  return "attr" + std::to_string(a) + "_val" + std::to_string(v);
}

StringCollection InternAsStrings(const BagCollection& numeric) {
  StringCollection out;
  out.dicts = std::make_shared<DictionarySet>();
  for (AttrId a : numeric.union_schema().attrs()) {
    out.catalog.Intern("a" + std::to_string(a));
  }
  std::vector<Bag> bags;
  for (const Bag& b : numeric.bags()) {
    BagBuilder builder(b.schema());
    builder.Reserve(b.SupportSize());
    for (size_t e = 0; e < b.SupportSize(); ++e) {
      Tuple t = b.RowAt(e);
      std::vector<std::string> row(b.schema().arity());
      for (size_t i = 0; i < row.size(); ++i) {
        row[i] = Token(b.schema().at(i), t.at(i));
      }
      EXPECT_TRUE(builder.AddExternal(row, b.MultiplicityAt(e), out.dicts.get()).ok());
    }
    bags.push_back(*builder.Build());
    out.names.push_back("bag" + std::to_string(out.names.size()));
  }
  out.collection = *BagCollection::Make(std::move(bags));
  return out;
}

// All single-shot reference answers for one collection.
struct Expected {
  std::vector<std::vector<bool>> two_bag;  // [i][j]
  bool pairwise = true;
  std::pair<size_t, size_t> failing_pair{0, 0};
  bool global = true;
  bool kwise = true;
  std::optional<std::vector<size_t>> failing_subset;
  // Minimal witnesses for consistent pairs (empty optional elsewhere).
  std::vector<std::vector<std::optional<Bag>>> witness;
};

Expected ComputeExpected(const BagCollection& c, size_t kwise_k) {
  Expected e;
  size_t m = c.size();
  e.two_bag.assign(m, std::vector<bool>(m, true));
  e.witness.assign(m, std::vector<std::optional<Bag>>(m));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      e.two_bag[i][j] = *AreConsistent(c.bag(i), c.bag(j));
      if (e.two_bag[i][j] && i < j) {
        e.witness[i][j] = *FindMinimalWitness(c.bag(i), c.bag(j));
      }
    }
  }
  std::pair<size_t, size_t> failing{0, 0};
  e.pairwise = *ArePairwiseConsistent(c, &failing);
  if (!e.pairwise) e.failing_pair = failing;
  e.global = *IsGloballyConsistent(c);
  e.kwise = *AreKWiseConsistent(c, kwise_k, &e.failing_subset);
  return e;
}

// Ships the collection over one client connection and seals it.
void UploadAndSeal(BagcdClient* client, const StringCollection& sc,
                   size_t seal_threads) {
  for (const Bag& bag : sc.collection.bags()) {
    ASSERT_TRUE(
        client->ShipDictionaries(*sc.dicts, bag.schema(), sc.catalog).ok());
  }
  for (size_t i = 0; i < sc.collection.size(); ++i) {
    ASSERT_TRUE(
        client->LoadBagU32(sc.names[i], sc.collection.bag(i), sc.catalog).ok());
  }
  Result<size_t> sealed = client->Seal(/*canonical=*/false, seal_threads);
  ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();
  ASSERT_EQ(*sealed, sc.collection.size());
}

// Thread-safe capture of the first divergence, so a failure in CI names
// the query and both answers instead of just counting.
struct FailureLog {
  std::atomic<int> count{0};
  std::mutex mu;
  std::string first;
  void Record(const std::string& what) {
    ++count;
    std::lock_guard<std::mutex> lock(mu);
    if (first.empty()) first = what;
  }
};

// One client's full mixed-query pass; every answer checked bit-exactly.
void RunMixedQueries(const std::string& host, uint16_t port,
                     const StringCollection& sc, const Expected& e,
                     size_t kwise_k, FailureLog* failures) {
  Result<BagcdClient> client = BagcdClient::Connect(host, port);
  if (!client.ok()) {
    failures->Record("connect: " + client.status().ToString());
    return;
  }
  size_t m = sc.collection.size();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      Result<bool> verdict = client->TwoBag(i, j);
      if (!verdict.ok() || *verdict != e.two_bag[i][j]) {
        failures->Record(
            "TWOBAG " + std::to_string(i) + " " + std::to_string(j) + ": " +
            (verdict.ok() ? "wrong verdict" : verdict.status().ToString()));
        return;
      }
    }
  }
  Result<std::optional<std::pair<size_t, size_t>>> pairwise = client->Pairwise();
  if (!pairwise.ok() || pairwise->has_value() == e.pairwise ||
      (pairwise->has_value() && **pairwise != e.failing_pair)) {
    failures->Record("PAIRWISE: " + (pairwise.ok() ? "wrong verdict/pair"
                                                   : pairwise.status().ToString()));
    return;
  }
  Result<bool> global = client->Global();
  if (!global.ok() || *global != e.global) {
    failures->Record("GLOBAL: " + (global.ok() ? "wrong verdict"
                                               : global.status().ToString()));
    return;
  }
  Result<std::optional<std::vector<size_t>>> kwise = client->KWise(kwise_k);
  if (!kwise.ok() || kwise->has_value() == e.kwise ||
      (kwise->has_value() && **kwise != *e.failing_subset)) {
    failures->Record("KWISE: " + (kwise.ok() ? "wrong verdict/subset"
                                             : kwise.status().ToString()));
    return;
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      Result<std::optional<std::vector<std::string>>> witness =
          client->Witness(i, j, /*minimal=*/true);
      if (!witness.ok() || witness->has_value() != e.two_bag[i][j]) {
        failures->Record(
            "WITNESS " + std::to_string(i) + " " + std::to_string(j) + ": " +
            (witness.ok() ? "presence mismatch" : witness.status().ToString()));
        return;
      }
      if (!witness->has_value()) continue;
      // Decode the wire block and compare multiplicities bit-exactly.
      AttributeCatalog catalog = sc.catalog;
      size_t pos = 0;
      Result<Bag> decoded = ParseBag(**witness, &pos, &catalog, sc.dicts.get());
      if (!decoded.ok() || *decoded != *e.witness[i][j]) {
        failures->Record("WITNESS " + std::to_string(i) + " " +
                         std::to_string(j) + ": " +
                         (decoded.ok() ? "multiplicities differ"
                                       : decoded.status().ToString()));
        return;
      }
    }
  }
}

TEST(ServerConcurrentTest, MixedQueriesBitIdenticalAcrossClients) {
  struct Scenario {
    const char* name;
    BagCollection numeric;
    size_t kwise_k;
  };
  Rng rng(20260727);
  BagGenOptions gen;
  gen.support_size = 48;
  gen.domain_size = 6;
  gen.max_multiplicity = 64;

  std::vector<Scenario> scenarios;
  // Acyclic and consistent by construction (hidden witness).
  scenarios.push_back(
      {"acyclic_consistent", *MakeGloballyConsistentCollection(*MakePath(5), gen, &rng),
       3});
  // Acyclic with one perturbed bag: some pair must fail.
  {
    BagCollection c = *MakeGloballyConsistentCollection(*MakePath(4), gen, &rng);
    std::vector<Bag> bags(c.bags());
    Bag perturbed = bags[1];
    EXPECT_TRUE(
        perturbed.Set(bags[1].RowAt(0), bags[1].MultiplicityAt(0) + 3).ok());
    bags[1] = perturbed;
    scenarios.push_back({"acyclic_perturbed", *BagCollection::Make(std::move(bags)), 2});
  }
  // Cyclic (triangle): GLOBAL runs the exact P(R1..Rm) feasibility path.
  {
    BagGenOptions small = gen;
    small.support_size = 12;
    small.domain_size = 3;
    small.max_multiplicity = 4;
    scenarios.push_back(
        {"cyclic_triangle",
         *MakeGloballyConsistentCollection(*MakeCycle(3), small, &rng), 3});
  }

  for (Scenario& scenario : scenarios) {
    SCOPED_TRACE(scenario.name);
    StringCollection sc = InternAsStrings(scenario.numeric);
    Expected expected = ComputeExpected(sc.collection, scenario.kwise_k);

    BagcdServerOptions options;
    options.query_threads = 4;  // fan queries out on the shared pool
    Result<std::unique_ptr<BagcdServer>> server = BagcdServer::Start(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    {
      Result<BagcdClient> uploader =
          BagcdClient::Connect("127.0.0.1", (*server)->port());
      ASSERT_TRUE(uploader.ok()) << uploader.status().ToString();
      UploadAndSeal(&*uploader, sc, /*seal_threads=*/2);
    }

    constexpr size_t kClients = 6;  // acceptance floor is 4 concurrent clients
    FailureLog failures;
    std::vector<std::thread> clients;
    for (size_t t = 0; t < kClients; ++t) {
      clients.emplace_back([&] {
        RunMixedQueries("127.0.0.1", (*server)->port(), sc, expected,
                        scenario.kwise_k, &failures);
      });
    }
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(failures.count.load(), 0)
        << scenario.name << ": first divergence: " << failures.first;
    (*server)->Shutdown();
  }
}

TEST(ServerConcurrentTest, GenerationSwapsUnderLoadNeverTearAnswers) {
  Rng rng(424242);
  BagGenOptions gen;
  gen.support_size = 32;
  gen.domain_size = 5;
  gen.max_multiplicity = 32;
  StringCollection sc =
      InternAsStrings(*MakeGloballyConsistentCollection(*MakePath(4), gen, &rng));
  Expected expected = ComputeExpected(sc.collection, 2);

  BagcdServerOptions options;
  options.query_threads = 2;
  Result<std::unique_ptr<BagcdServer>> server = BagcdServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Result<BagcdClient> admin = BagcdClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(admin.ok());
  UploadAndSeal(&*admin, sc, 1);

  std::atomic<bool> stop{false};
  FailureLog wrong;
  std::atomic<int> answered{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      Result<BagcdClient> client =
          BagcdClient::Connect("127.0.0.1", (*server)->port());
      if (!client.ok()) {
        wrong.Record("connect: " + client.status().ToString());
        return;
      }
      size_t m = sc.collection.size();
      while (!stop.load()) {
        for (size_t i = 0; i < m && !stop.load(); ++i) {
          for (size_t j = i + 1; j < m; ++j) {
            Result<bool> verdict = client->TwoBag(i, j);
            if (verdict.ok()) {
              // A real verdict must be THE verdict: every generation
              // seals the same collection.
              if (*verdict != expected.two_bag[i][j]) {
                wrong.Record("TWOBAG " + std::to_string(i) + " " +
                             std::to_string(j) + ": wrong verdict");
              }
              ++answered;
            } else if (verdict.status().message().find("E_STATE") ==
                       std::string::npos) {
              // The only legal failure is the documented RESET gap.
              wrong.Record("TWOBAG " + std::to_string(i) + " " +
                           std::to_string(j) + ": " +
                           verdict.status().ToString());
            }
          }
        }
      }
    });
  }
  // Thrash generations: unpublish and re-seal the same data repeatedly
  // while the readers hammer the registry.
  for (int cycle = 0; cycle < 10; ++cycle) {
    Result<std::vector<std::string>> reset = admin->Command("RESET");
    ASSERT_TRUE(reset.ok());
    ASSERT_EQ(reset->front(), "OK RESET");
    for (size_t i = 0; i < sc.collection.size(); ++i) {
      ASSERT_TRUE(
          admin->LoadBagU32(sc.names[i], sc.collection.bag(i), sc.catalog).ok());
    }
    Result<size_t> sealed = admin->Seal();
    ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(wrong.count.load(), 0) << "first divergence: " << wrong.first;
  EXPECT_GT(answered.load(), 0);
  (*server)->Shutdown();
}

// A SEAL that loses the publish race to a newer generation must surface
// the retryable E_STATE — not a silent drop of the loser's snapshot
// (the pre-fix behavior: the session answered OK while the registry
// discarded its engine, so the client queried a generation it never
// built). The race is made deterministic with the registry's test hook;
// the racing-seals loop below exercises the same path under real
// concurrency.
TEST(ServerConcurrentTest, SupersededSealSurfacesRetryableEState) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  std::vector<std::string> out = session.HandleScript(
      "DICT item 2\napple\nbanana\nEND\n"
      "LOADU32 r item\n0 : 2\n1 : 1\nEND\n"
      "LOADU32 s item\n0 : 2\n1 : 1\nEND\n");
  for (const std::string& line : out) {
    ASSERT_EQ(line.rfind("OK", 0), 0u) << line;
  }

  // Deterministic stand-in for a concurrent seal winning mid-build:
  // exactly the next SEAL takes a seq at or below the high-water mark.
  registry.MarkNextSealSupersededForTest(registry.Default().get());
  out = session.HandleScript("SEAL\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_STATE", 0), 0u) << out[0];
  EXPECT_NE(out[0].find("superseded"), std::string::npos) << out[0];
  EXPECT_NE(out[0].find("retry SEAL"), std::string::npos) << out[0];
  // The loser's snapshot was never published.
  EXPECT_EQ(registry.Peek(registry.Default().get()), nullptr);

  // The documented recovery: the retry takes a fresh seq and wins.
  out = session.HandleScript("SEAL\nTWOBAG r s\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "OK SEAL 2 bags");
  EXPECT_EQ(out[1], "OK CONSISTENT");
}

// Many sessions sealing the same collection at once: every response is
// either OK SEAL or the retryable E_STATE, at least one seal wins, and
// the surviving generation answers queries.
TEST(ServerConcurrentTest, RacingSealsEitherWinOrAskForRetry) {
  CollectionRegistry registry;
  constexpr size_t kSealers = 4;
  std::atomic<int> won{0};
  FailureLog bad;
  std::vector<std::thread> sealers;
  for (size_t t = 0; t < kSealers; ++t) {
    sealers.emplace_back([&registry, &won, &bad] {
      ServerSession session(&registry, nullptr);
      std::vector<std::string> loaded = session.HandleScript(
          "DICT item 2\napple\nbanana\nEND\n"
          "LOADU32 r item\n0 : 2\n1 : 1\nEND\n"
          "LOADU32 s item\n0 : 2\n1 : 1\nEND\n");
      for (int round = 0; round < 8; ++round) {
        std::vector<std::string> out = session.HandleScript("SEAL\n");
        if (out.size() != 1) {
          bad.Record("SEAL answered " + std::to_string(out.size()) + " lines");
          return;
        }
        if (out[0].rfind("OK SEAL 2 bags", 0) == 0) {
          ++won;
        } else if (out[0].rfind("ERR E_STATE", 0) != 0 ||
                   out[0].find("retry SEAL") == std::string::npos) {
          bad.Record("SEAL: " + out[0]);
          return;
        }
      }
    });
  }
  for (std::thread& t : sealers) t.join();
  EXPECT_EQ(bad.count.load(), 0) << "first divergence: " << bad.first;
  EXPECT_GT(won.load(), 0);
  ServerSession reader(&registry, nullptr);
  std::vector<std::string> verdict = reader.HandleScript("TWOBAG r s\n");
  ASSERT_EQ(verdict.size(), 1u);
  EXPECT_EQ(verdict[0], "OK CONSISTENT");
}

// A delta commit on an evicted collection must answer the retryable
// E_STATE, not silently reload (deriving a generation may never touch
// the reload path) and not corrupt the session's staged copy.
TEST(ServerConcurrentTest, MutationOnEvictedCollectionIsRetryableEState) {
  CollectionRegistry::Options options;
  options.mem_budget_bytes = 1;  // any second publish evicts the first
  CollectionRegistry registry(options);

  ServerSession victim(&registry, nullptr);
  std::vector<std::string> out = victim.HandleScript(
      "ATTACH tenant_a\n"
      "DICT item 2\napple\nbanana\nEND\n"
      "LOADU32 r item\n0 : 2\nEND\n"
      "LOADU32 s item\n0 : 2\nEND\n"
      "SEAL\n");
  ASSERT_EQ(out.back(), "OK SEAL 2 bags");

  // A second tenant publishes; the 1-byte budget evicts tenant_a (the
  // most recent publish is exempt, the cold one goes).
  ServerSession other(&registry, nullptr);
  out = other.HandleScript(
      "ATTACH tenant_b\n"
      "DICT item 2\napple\nbanana\nEND\n"
      "LOADU32 r item\n0 : 1\nEND\n"
      "SEAL\n");
  ASSERT_EQ(out.back(), "OK SEAL 1 bags");

  // The victim's lineage is intact but its generation is gone: the
  // delta is refused with the documented retryable message.
  out = victim.HandleScript("INSERT r item\n1 : 3\nEND\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_STATE", 0), 0u) << out[0];
  EXPECT_NE(out[0].find("not resident"), std::string::npos) << out[0];

  // The documented recovery: re-SEAL (which re-publishes and evicts
  // tenant_b in turn), then the delta commits incrementally.
  out = victim.HandleScript("SEAL\nINSERT r item\n1 : 3\nEND\nTWOBAG r s\n");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "OK SEAL 2 bags 2 reused");
  EXPECT_EQ(out[1], "OK INSERT r 1 rows 2 bags 1 reused");
  EXPECT_EQ(out[2], "OK INCONSISTENT");
}

// A delta publish that loses the chain race answers the retryable
// E_STATE and mutates nothing — the deterministic stand-in for a
// concurrent seal winning between lineage check and publish.
TEST(ServerConcurrentTest, SupersededDeltaPublishIsRetryable) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  std::vector<std::string> out = session.HandleScript(
      "DICT item 2\napple\nbanana\nEND\n"
      "LOADU32 r item\n0 : 2\nEND\n"
      "LOADU32 s item\n0 : 2\nEND\n"
      "SEAL\n");
  ASSERT_EQ(out.back(), "OK SEAL 2 bags");

  registry.MarkNextSealSupersededForTest(registry.Default().get());
  out = session.HandleScript("INSERT r item\n1 : 1\nEND\nTWOBAG r s\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rfind("ERR E_STATE", 0), 0u) << out[0];
  EXPECT_NE(out[0].find("superseded"), std::string::npos) << out[0];
  EXPECT_EQ(out[1], "OK CONSISTENT");  // nothing published, bag intact

  // The retry (a fresh seq) wins and carries the delta.
  out = session.HandleScript("INSERT r item\n1 : 1\nEND\nTWOBAG r s\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "OK INSERT r 1 rows 2 bags 1 reused");
  EXPECT_EQ(out[1], "OK INCONSISTENT");
}

// Readers holding the pre-delta generation finish on it bit-identically
// while delta commits publish successors: snapshots are immutable, so a
// commit may never disturb an in-flight query's answers. Concurrent
// reader threads additionally hammer the registry during the commits —
// every answer must be one of the two legal generations' verdicts.
TEST(ServerConcurrentTest, ReadersOnOldGenerationSurviveDeltaPublishes) {
  CollectionRegistry registry;
  ServerSession admin(&registry, nullptr);
  std::vector<std::string> out = admin.HandleScript(
      "DICT item 2\napple\nbanana\nEND\n"
      "LOADU32 r item\n0 : 2\nEND\n"
      "LOADU32 s item\n0 : 2\nEND\n"
      "SEAL\n");
  ASSERT_EQ(out.back(), "OK SEAL 2 bags");

  // Pin the pre-delta generation the way an in-flight query does and
  // record its answers.
  std::shared_ptr<const EngineSnapshot> pinned =
      registry.Peek(registry.Default().get());
  ASSERT_NE(pinned, nullptr);
  ASSERT_TRUE(*pinned->TwoBag(0, 1));
  std::string pinned_witness =
      pinned->WriteBagText(**pinned->Witness(0, 1, /*minimal=*/true));

  std::atomic<bool> stop{false};
  FailureLog wrong;
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 4; ++t) {
    readers.emplace_back([&registry, &stop, &wrong] {
      ServerSession reader(&registry, nullptr);
      while (!stop.load()) {
        std::vector<std::string> verdict = reader.HandleScript("TWOBAG r s\n");
        if (verdict.size() != 1 ||
            (verdict[0] != "OK CONSISTENT" && verdict[0] != "OK INCONSISTENT")) {
          wrong.Record("TWOBAG answered '" +
                       (verdict.empty() ? std::string("<nothing>") : verdict[0]) +
                       "'");
          return;
        }
      }
    });
  }
  // Alternate INSERT/DELETE of the same rows: generations flip between
  // the consistent base and the inconsistent +delta state.
  for (int cycle = 0; cycle < 20; ++cycle) {
    const char* script = (cycle % 2 == 0) ? "INSERT r item\n1 : 3\nEND\n"
                                          : "DELETE r item\n1 : 3\nEND\n";
    out = admin.HandleScript(script);
    ASSERT_EQ(out.size(), 1u);
    ASSERT_EQ(out[0].rfind("OK", 0), 0u) << out[0];
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(wrong.count.load(), 0) << "first divergence: " << wrong.first;

  // The pinned generation never moved: same verdict, same witness bytes.
  EXPECT_TRUE(*pinned->TwoBag(0, 1));
  EXPECT_EQ(pinned_witness,
            pinned->WriteBagText(**pinned->Witness(0, 1, /*minimal=*/true)));
  EXPECT_EQ(pinned->seq(), 1u);
  // Twenty commits later the served generation is number 21.
  EXPECT_EQ(registry.Peek(registry.Default().get())->seq(), 21u);
}

}  // namespace
}  // namespace bagc
