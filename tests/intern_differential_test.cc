// Randomized interning-equivalence harness (the correctness obligation of
// the interned-row refactor): on 200+ generated collections, the
// fixed-width interned-row pipeline must produce *bit-identical* verdicts
// and witness multiplicities to a string-keyed oracle that never interns
// anything — it computes marginals as std::map<std::vector<std::string>,
// uint64_t> over the external tokens directly. Covers:
//
//   - pairwise / two-bag / global verdicts (and the first failing pair)
//     of an engine over dictionary-interned bags vs the string oracle and
//     vs the legacy numeric-codec representation of the same instance;
//   - witness multiplicities: every two-bag witness, decoded back to
//     external tokens, marginalizes to exactly the oracle's string maps;
//   - insertion-order robustness: rows intern in shuffled order, so
//     dictionary ids differ from the numeric values — only equality
//     structure survives, which is precisely what the paper licenses;
//   - bag_io round-trip: write-with-dictionary → parse-into-fresh
//     dictionary → identical external content and identical verdicts.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bag/bag_io.h"
#include "engine/consistency_engine.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "util/random.h"

namespace bagc {
namespace {

// External token for (attribute, numeric value) — deliberately stringy
// (shared prefix, per-attribute salt) so nothing short of real string
// equality can tell tokens apart.
std::string Tok(AttrId a, Value v) {
  return "attr" + std::to_string(a) + "_val_" + std::to_string(v);
}

// Schema-aligned external tokens of a numeric tuple.
std::vector<std::string> TokensOf(const Schema& schema, const Tuple& t) {
  std::vector<std::string> out(schema.arity());
  for (size_t i = 0; i < schema.arity(); ++i) out[i] = Tok(schema.at(i), t.at(i));
  return out;
}

using StringBag = std::map<std::vector<std::string>, uint64_t>;

// The string-keyed oracle's marginal: group the external token rows of
// `bag` (a numeric-codec bag) by their projection onto z.
StringBag OracleMarginal(const Bag& bag, const Schema& z) {
  Projector proj = *Projector::Make(bag.schema(), z);
  StringBag out;
  for (const auto& [t, mult] : bag.entries()) {
    std::vector<std::string> row = TokensOf(bag.schema(), t);
    std::vector<std::string> projected(proj.arity());
    for (size_t i = 0; i < proj.arity(); ++i) projected[i] = row[proj.SourceIndex(i)];
    out[projected] += mult;
  }
  return out;
}

// Decoded table keyed by attribute *name*: representation-independent
// across catalogs whose id assignment permutes (fresh parse order).
using NamedBag =
    std::map<std::vector<std::pair<std::string, std::string>>, uint64_t>;

NamedBag NamedTable(const Bag& bag, const DictionarySet& dicts,
                    const AttributeCatalog& catalog) {
  NamedBag out;
  for (const auto& [t, mult] : bag.entries()) {
    std::vector<std::string> tokens = *dicts.DecodeRow(bag.schema(), t);
    std::vector<std::pair<std::string, std::string>> row(tokens.size());
    for (size_t i = 0; i < tokens.size(); ++i) {
      row[i] = {catalog.Name(bag.schema().at(i)), tokens[i]};
    }
    std::sort(row.begin(), row.end());
    out[std::move(row)] += mult;
  }
  return out;
}

// Decoded string table of an interned bag (external rows -> multiplicity).
StringBag DecodedTable(const Bag& bag, const DictionarySet& dicts) {
  StringBag out;
  for (const auto& [t, mult] : bag.entries()) {
    out[*dicts.DecodeRow(bag.schema(), t)] += mult;
  }
  return out;
}

struct OracleVerdict {
  bool consistent = true;
  std::pair<size_t, size_t> first_failing{0, 0};
};

OracleVerdict OraclePairwise(const BagCollection& numeric) {
  for (size_t i = 0; i < numeric.size(); ++i) {
    for (size_t j = i + 1; j < numeric.size(); ++j) {
      Schema z =
          Schema::Intersect(numeric.bag(i).schema(), numeric.bag(j).schema());
      if (OracleMarginal(numeric.bag(i), z) != OracleMarginal(numeric.bag(j), z)) {
        return {false, {i, j}};
      }
    }
  }
  return {};
}

// Same workload shapes as the engine differential: rotating hypergraph
// families, consistent by construction, perturbed half the time.
Result<BagCollection> MakeWorkload(uint64_t seed) {
  Rng rng(seed * 2654435761u + 17);
  BagGenOptions options;
  options.support_size = 2 + rng.Below(8);
  options.domain_size = 2 + rng.Below(3);
  options.max_multiplicity = 5;
  Hypergraph h = [&] {
    switch (seed % 4) {
      case 0:
        return *MakePath(2 + seed % 4);
      case 1:
        return *MakeStar(2 + seed % 4);
      case 2:
        return *MakeRandomAcyclic(3 + seed % 3, 3, &rng);
      default:
        return *MakeCycle(3);
    }
  }();
  BAGC_ASSIGN_OR_RETURN(BagCollection c,
                        MakeGloballyConsistentCollection(h, options, &rng));
  if (rng.Chance(1, 2)) {
    std::vector<Bag> bags = c.bags();
    Bag& victim = bags[rng.Below(bags.size())];
    if (victim.IsEmpty()) {
      std::vector<Value> zeros(victim.schema().arity(), 0);
      EXPECT_TRUE(victim.Set(Tuple{zeros}, 1).ok());
    } else {
      size_t pick = rng.Below(victim.SupportSize());
      Tuple t = victim.entries()[pick].first;
      EXPECT_TRUE(victim.Set(t, victim.entries()[pick].second + 1).ok());
    }
    return BagCollection::Make(std::move(bags));
  }
  return c;
}

// Interns the numeric collection's external tokens through one shared
// DictionarySet, inserting rows in shuffled order so dictionary ids bear
// no relation to the numeric values (or to the sorted row order).
Result<BagCollection> InternCollection(const BagCollection& numeric,
                                       DictionarySet* dicts, Rng* rng) {
  std::vector<Bag> interned;
  interned.reserve(numeric.size());
  for (const Bag& b : numeric.bags()) {
    std::vector<size_t> order(b.SupportSize());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng->Shuffle(&order);
    BagBuilder builder(b.schema());
    builder.Reserve(b.SupportSize());
    for (size_t i : order) {
      const auto& [t, mult] = b.entries()[i];
      BAGC_RETURN_NOT_OK(
          builder.AddExternal(TokensOf(b.schema(), t), mult, dicts));
    }
    BAGC_ASSIGN_OR_RETURN(Bag sealed, builder.Build());
    interned.push_back(std::move(sealed));
  }
  return BagCollection::Make(std::move(interned));
}

TEST(InternDifferentialTest, MatchesStringOracleOn200Collections) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(9'000'000 + seed);
    BagCollection numeric = *MakeWorkload(seed);
    auto dicts = std::make_shared<DictionarySet>();
    BagCollection interned = *InternCollection(numeric, dicts.get(), &rng);

    // Sanity: the interned bags decode to exactly the oracle's tables.
    for (size_t i = 0; i < numeric.size(); ++i) {
      ASSERT_EQ(DecodedTable(interned.bag(i), *dicts),
                OracleMarginal(numeric.bag(i), numeric.bag(i).schema()));
    }

    OracleVerdict oracle = OraclePairwise(numeric);

    EngineOptions opts;
    opts.dictionaries = dicts;
    ConsistencyEngine engine = *ConsistencyEngine::Make(interned, opts);
    ConsistencyEngine numeric_engine = *ConsistencyEngine::Make(numeric);
    // Columnar leg: the same interned collection with every sealed
    // marginal forced through the SoA path — verdicts, failing pairs, and
    // witness multiplicities must be bit-identical to the row path.
    EngineOptions columnar_opts;
    columnar_opts.dictionaries = dicts;
    columnar_opts.marginal_path = MarginalPath::kColumnar;
    ConsistencyEngine columnar_engine =
        *ConsistencyEngine::Make(interned, columnar_opts);

    // Pairwise: interned engine == string oracle == numeric codec path ==
    // columnar path, including the lexicographically-first failing pair.
    PairwiseVerdict verdict = *engine.PairwiseAll();
    PairwiseVerdict numeric_verdict = *numeric_engine.PairwiseAll();
    PairwiseVerdict columnar_verdict = *columnar_engine.PairwiseAll();
    EXPECT_EQ(verdict.consistent, oracle.consistent);
    EXPECT_EQ(numeric_verdict.consistent, oracle.consistent);
    EXPECT_EQ(columnar_verdict.consistent, oracle.consistent);
    if (!oracle.consistent) {
      EXPECT_EQ(verdict.witness_pair, oracle.first_failing);
      EXPECT_EQ(numeric_verdict.witness_pair, oracle.first_failing);
      EXPECT_EQ(columnar_verdict.witness_pair, oracle.first_failing);
    }

    // Two-bag verdicts and witness multiplicities on every pair.
    for (size_t i = 0; i < interned.size(); ++i) {
      for (size_t j = i + 1; j < interned.size(); ++j) {
        Schema z = Schema::Intersect(interned.bag(i).schema(),
                                     interned.bag(j).schema());
        bool pair_oracle = OracleMarginal(numeric.bag(i), z) ==
                           OracleMarginal(numeric.bag(j), z);
        EXPECT_EQ(*engine.TwoBag(i, j), pair_oracle);
        EXPECT_EQ(*numeric_engine.TwoBag(i, j), pair_oracle);
        EXPECT_EQ(*columnar_engine.TwoBag(i, j), pair_oracle);

        std::optional<Bag> witness = *engine.Witness(i, j);
        std::optional<Bag> columnar_witness = *columnar_engine.Witness(i, j);
        EXPECT_EQ(witness.has_value(), pair_oracle);
        ASSERT_EQ(columnar_witness.has_value(), witness.has_value());
        if (witness.has_value()) {
          // The columnar engine's witness is the same bag, multiplicity
          // for multiplicity.
          EXPECT_EQ(*columnar_witness, *witness);
        }
        if (witness.has_value()) {
          // Bit-identical witness multiplicities: the decoded witness
          // marginals ARE the oracle's string tables, multiplicity for
          // multiplicity (T[Xi] == Ri as functions).
          Bag wx = *witness->Marginal(interned.bag(i).schema());
          Bag wy = *witness->Marginal(interned.bag(j).schema());
          EXPECT_EQ(DecodedTable(wx, *dicts),
                    OracleMarginal(numeric.bag(i), numeric.bag(i).schema()));
          EXPECT_EQ(DecodedTable(wy, *dicts),
                    OracleMarginal(numeric.bag(j), numeric.bag(j).schema()));
        }
      }
    }

    // Global verdict: interned vs numeric representation (acyclic cases
    // reduce to the oracle-checked pairwise; cyclic ones cross-check the
    // exact solver on both row encodings) — and the columnar leg agrees.
    EXPECT_EQ(*engine.Global(), *numeric_engine.Global());
    EXPECT_EQ(*columnar_engine.Global(), *engine.Global());

    // k-wise on a sample of seeds (subset sweep is the expensive one).
    if (seed % 10 == 0 && interned.size() >= 3) {
      std::optional<std::vector<size_t>> f1, f2;
      bool k1 = *engine.KWiseConsistent(3, &f1);
      bool k2 = *numeric_engine.KWiseConsistent(3, &f2);
      EXPECT_EQ(k1, k2);
      EXPECT_EQ(f1, f2);
    }
  }
}

TEST(InternDifferentialTest, BagIoRoundTripsThroughDictionaries) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(41'000 + seed);
    BagCollection numeric = *MakeWorkload(seed);
    DictionarySet dicts;
    BagCollection interned = *InternCollection(numeric, &dicts, &rng);

    AttributeCatalog catalog;
    for (AttrId a : interned.union_schema().attrs()) {
      catalog.Intern("A" + std::to_string(a));
    }
    std::string text = WriteCollection(interned.bags(), catalog, &dicts);

    // Parse into a FRESH catalog and dictionary set: ids are assigned
    // from scratch in file order, yet the external content — and hence
    // every verdict — must be identical.
    AttributeCatalog catalog2;
    DictionarySet dicts2;
    std::vector<Bag> reparsed = *ParseCollection(text, &catalog2, &dicts2);
    ASSERT_EQ(reparsed.size(), interned.size());
    for (size_t i = 0; i < reparsed.size(); ++i) {
      EXPECT_EQ(NamedTable(reparsed[i], dicts2, catalog2),
                NamedTable(interned.bag(i), dicts, catalog));
    }

    BagCollection rc = *BagCollection::Make(reparsed);
    ConsistencyEngine e1 = *ConsistencyEngine::Make(interned);
    ConsistencyEngine e2 = *ConsistencyEngine::Make(rc);
    PairwiseVerdict v1 = *e1.PairwiseAll();
    PairwiseVerdict v2 = *e2.PairwiseAll();
    EXPECT_EQ(v1.consistent, v2.consistent);
    if (!v1.consistent) {
      EXPECT_EQ(v1.witness_pair, v2.witness_pair);
    }
    EXPECT_EQ(*e1.Global(), *e2.Global());

    // Writing the reparsed collection with its own dictionaries yields a
    // document with the same external rows (the string tables already
    // matched); a second parse is a fixed point.
    std::string text2 = WriteCollection(rc.bags(), catalog2, &dicts2);
    AttributeCatalog catalog3;
    DictionarySet dicts3;
    std::vector<Bag> again = *ParseCollection(text2, &catalog3, &dicts3);
    ASSERT_EQ(again.size(), reparsed.size());
    for (size_t i = 0; i < again.size(); ++i) {
      EXPECT_EQ(NamedTable(again[i], dicts3, catalog3),
                NamedTable(reparsed[i], dicts2, catalog2));
    }
  }
}

TEST(InternDifferentialTest, CanonicalizedScansMatchSortedMapOracle) {
  // With canonicalize_dictionaries, id order == external sort order, so an
  // ordered entry scan of every sealed bag decodes to exactly the sequence
  // a std::map over the external token rows yields — and verdicts are
  // unchanged from the un-canonicalized engine.
  for (uint64_t seed = 0; seed < 40; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(77'000 + seed);
    BagCollection numeric = *MakeWorkload(seed);
    auto dicts = std::make_shared<DictionarySet>();
    BagCollection interned = *InternCollection(numeric, dicts.get(), &rng);

    EngineOptions plain_opts;
    plain_opts.dictionaries = dicts;
    ConsistencyEngine plain = *ConsistencyEngine::Make(interned, plain_opts);
    PairwiseVerdict before = *plain.PairwiseAll();
    bool global_before = *plain.Global();

    EngineOptions canon_opts;
    canon_opts.dictionaries = dicts;
    canon_opts.canonicalize_dictionaries = true;
    ConsistencyEngine canon = *ConsistencyEngine::Make(interned, canon_opts);

    for (size_t b = 0; b < canon.collection().size(); ++b) {
      const Bag& bag = canon.collection().bag(b);
      // The std::map oracle iterates external rows in sorted order; the
      // canonicalized bag's id-sorted scan must decode to the same walk.
      StringBag oracle = OracleMarginal(numeric.bag(b), numeric.bag(b).schema());
      ASSERT_EQ(bag.SupportSize(), oracle.size());
      auto it = oracle.begin();
      for (const auto& [t, mult] : bag.entries()) {
        std::vector<std::string> decoded =
            *canon.dictionaries()->DecodeRow(bag.schema(), t);
        EXPECT_EQ(decoded, it->first);
        EXPECT_EQ(mult, it->second);
        ++it;
      }
    }

    // Canonicalization is a per-attribute value renaming: every verdict
    // survives it.
    PairwiseVerdict after = *canon.PairwiseAll();
    EXPECT_EQ(after.consistent, before.consistent);
    if (!before.consistent) {
      EXPECT_EQ(after.witness_pair, before.witness_pair);
    }
    EXPECT_EQ(*canon.Global(), global_before);
  }

  // Guard rails: canonicalization needs an owned collection and a set.
  BagCollection c = *MakeWorkload(1);
  EngineOptions bad;
  bad.canonicalize_dictionaries = true;
  EXPECT_FALSE(ConsistencyEngine::Make(c, bad).ok());  // no dictionaries
  bad.dictionaries = std::make_shared<DictionarySet>();
  EXPECT_FALSE(ConsistencyEngine::MakeView(c, bad).ok());  // borrowed view
}

TEST(InternDifferentialTest, MixedNumericAndDictionaryFilesParse) {
  // Legacy numeric documents must keep parsing identically with a
  // dictionary attached: tokens are interned as strings, and writing
  // decodes them back to the very same text.
  const char* text =
      "bag A B\n"
      "1 2 : 3\n"
      "7 2 : 1\n"
      "end\n";
  AttributeCatalog catalog;
  DictionarySet dicts;
  std::vector<Bag> bags = *ParseCollection(text, &catalog, &dicts);
  ASSERT_EQ(bags.size(), 1u);
  EXPECT_EQ(bags[0].SupportSize(), 2u);
  std::string rewritten = WriteBag(bags[0], catalog, &dicts);
  EXPECT_EQ(rewritten, text);

  // And a string-valued document is round-trippable the same way.
  const char* stext =
      "bag City Product\n"
      "berlin widget : 2\n"
      "paris gadget : 5\n"
      "end\n";
  AttributeCatalog scatalog;
  DictionarySet sdicts;
  std::vector<Bag> sbags = *ParseCollection(stext, &scatalog, &sdicts);
  ASSERT_EQ(sbags.size(), 1u);
  EXPECT_EQ(WriteBag(sbags[0], scatalog, &sdicts), stext);

  // Without a dictionary, string tokens are a parse error (historical
  // numeric format enforced).
  AttributeCatalog ncatalog;
  EXPECT_FALSE(ParseCollection(stext, &ncatalog).ok());
}

}  // namespace
}  // namespace bagc
