// Multi-tenant registry differential for the bagcd server: K segment-
// backed collections thrash through ATTACH / query / evict / lazy-reload
// cycles under a memory budget so tight that every publish evicts every
// other tenant, and each collection's responses — verdicts, failing
// pairs, witness rows down to their multiplicities — must stay
// bit-identical to a single-collection oracle registry that never
// evicts. A lazily reloaded snapshot is rebuilt from its BAGCSEG segment
// through a different code path than the session's LOADSEG + SEAL; this
// suite is what pins the two paths to identical ids, sort orders, and
// wire bytes (the canonical tenant covers the reload_canonical_ replay).
// Runs under the ASan/UBSan matrix leg via the `differential` label.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bag/bag_io.h"
#include "server/collection_registry.h"
#include "server/session.h"
#include "tuple/segment.h"

namespace bagc {
namespace {

struct Tenant {
  std::string name;
  std::string seg_path;
  bool canonical = false;
  std::vector<std::string> oracle;  // expected query responses
};

// Mixed query pass: consistency verdicts at every arity plus a witness
// with multiplicities. Responses are compared byte-for-byte, so this one
// script doubles as both the oracle probe and the thrash probe.
constexpr const char* kQueryScript =
    "TWOBAG 0 1\nPAIRWISE\nGLOBAL\nKWISE 2\nWITNESS 0 1 MINIMAL\n";

// Per-tenant bag text: multiplicities scale with the tenant index so
// every collection has distinct answers (tenant 0 consistent, higher
// tenants drift inconsistent), and cross-tenant cache mixups would be
// caught by the byte compare, not masked by identical data.
std::string TenantBagText(size_t k) {
  std::string text;
  text += "bag item store\n";
  text += "apple downtown : " + std::to_string(2 + k) + "\n";
  text += "banana uptown : " + std::to_string(1 + (k % 3)) + "\n";
  text += "cherry uptown : 2\nend\n";
  text += "bag store region\n";
  text += "downtown north : " + std::to_string(2 + k) + "\n";
  text += "uptown north : " + std::to_string(3 + (k % 3)) + "\n";
  text += "end\n";
  return text;
}

// Writes tenant k's collection as a segment file and returns its path.
std::string WriteTenantSegment(size_t k) {
  AttributeCatalog catalog;
  DictionarySet dicts;
  Result<std::vector<Bag>> bags =
      ParseCollection(TenantBagText(k), &catalog, &dicts);
  EXPECT_TRUE(bags.ok()) << bags.status().ToString();
  std::string path =
      testing::TempDir() + "registry_tenant" + std::to_string(k) + ".seg";
  EXPECT_TRUE(
      WriteSegmentFile(path, {"left", "right"}, *bags, catalog, dicts).ok());
  return path;
}

// ATTACH + LOADSEG + SEAL one tenant into `registry` and return the
// script responses (callers assert the last line is the SEAL ack).
std::vector<std::string> SealTenant(CollectionRegistry* registry,
                                    const Tenant& t) {
  ServerSession session(registry, nullptr);
  return session.HandleScript("ATTACH " + t.name + "\nLOADSEG " + t.seg_path +
                              "\n" + std::string(t.canonical ? "SEAL CANONICAL\n"
                                                             : "SEAL\n"));
}

TEST(ServerRegistryTest, EvictReloadThrashMatchesSingleCollectionOracle) {
  constexpr size_t kTenants = 5;
  std::vector<Tenant> tenants;
  for (size_t k = 0; k < kTenants; ++k) {
    Tenant t;
    t.name = "tenant" + std::to_string(k);
    t.seg_path = WriteTenantSegment(k);
    t.canonical = (k == 2);  // one tenant exercises the canonical replay
    tenants.push_back(std::move(t));
  }

  // Oracle answers: each tenant alone in an unlimited registry, queried
  // while resident — no eviction, no reload, the plain sealed path.
  for (Tenant& t : tenants) {
    CollectionRegistry oracle_registry;
    std::vector<std::string> sealed = SealTenant(&oracle_registry, t);
    ASSERT_FALSE(sealed.empty());
    ASSERT_EQ(sealed.back().rfind("OK SEAL 2 bags", 0), 0u) << sealed.back();
    ServerSession session(&oracle_registry, nullptr);
    session.HandleScript("ATTACH " + t.name + "\n");
    t.oracle = session.HandleScript(kQueryScript);
    ASSERT_FALSE(t.oracle.empty());
  }

  // The thrash registry: a 1-byte budget means every publish (seal OR
  // lazy reload) evicts every other resident tenant — maximal thrash.
  CollectionRegistry::Options opts;
  opts.mem_budget_bytes = 1;
  CollectionRegistry registry(opts);
  for (const Tenant& t : tenants) {
    std::vector<std::string> sealed = SealTenant(&registry, t);
    ASSERT_EQ(sealed.back().rfind("OK SEAL 2 bags", 0), 0u) << sealed.back();
  }
  EXPECT_GT(registry.evictions_total(), 0u);

  // Deterministic pseudo-random ATTACH/query thrash. Every probe either
  // hits the one resident tenant or forces a lazy segment reload; both
  // must answer with the oracle's exact bytes.
  ServerSession prober(&registry, nullptr);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<size_t>(state >> 33);
  };
  for (int round = 0; round < 60; ++round) {
    const Tenant& t = tenants[next() % kTenants];
    std::vector<std::string> bound =
        prober.HandleScript("ATTACH " + t.name + "\n");
    ASSERT_EQ(bound.size(), 1u);
    ASSERT_EQ(bound[0], "OK ATTACH " + t.name);
    std::vector<std::string> got = prober.HandleScript(kQueryScript);
    ASSERT_EQ(got, t.oracle) << "tenant " << t.name << " round " << round;
  }

  // The thrash really exercised the reload path, and the registry's
  // books balance: with a 1-byte budget at most one tenant is resident.
  uint64_t total_reloads = 0;
  size_t resident = 0;
  for (const Tenant& t : tenants) {
    CollectionRegistry::CollectionStats s =
        registry.Stats(registry.Find(t.name).get());
    EXPECT_TRUE(s.reloadable) << t.name;
    total_reloads += s.reloads;
    resident += s.resident ? 1 : 0;
  }
  EXPECT_GT(total_reloads, 0u);
  EXPECT_LE(resident, 1u);
  EXPECT_GT(registry.evictions_total(), kTenants);

  for (const Tenant& t : tenants) std::remove(t.seg_path.c_str());
}

TEST(ServerRegistryTest, EvictedStreamOnlyCollectionAnswersEStateUntilResealed) {
  CollectionRegistry::Options opts;
  opts.mem_budget_bytes = 1;
  CollectionRegistry registry(opts);

  // "ephemeral" is sealed from streamed rows: no segment, no reload path.
  ServerSession session(&registry, nullptr);
  std::vector<std::string> out = session.HandleScript(
      "ATTACH ephemeral\n"
      "DICT item 2\napple\nbanana\nEND\n"
      "LOADU32 r item\n0 : 2\n1 : 1\nEND\n"
      "LOADU32 s item\n0 : 2\n1 : 1\nEND\n"
      "SEAL\nTWOBAG r s\n");
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), "OK CONSISTENT");

  // Publishing another tenant under the 1-byte budget evicts it.
  Tenant other;
  other.name = "backed";
  other.seg_path = WriteTenantSegment(0);
  ASSERT_EQ(SealTenant(&registry, other).back().rfind("OK SEAL", 0), 0u);

  // The documented dead end, verbatim: E_STATE naming the collection,
  // the cause, and the recovery.
  out = session.HandleScript("TWOBAG r s\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0],
            "ERR E_STATE collection 'ephemeral' was evicted under the memory "
            "budget and has no segment to reload from; SEAL it again");

  // The recovery works: the session still holds its bags, so SEAL
  // republishes (reusing the lineage) and queries answer again.
  out = session.HandleScript("SEAL\nTWOBAG r s\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rfind("OK SEAL 2 bags", 0), 0u) << out[0];
  EXPECT_EQ(out[1], "OK CONSISTENT");

  // The segment-backed tenant, by contrast, reloads transparently even
  // after the re-seal above evicted it.
  ServerSession reader(&registry, nullptr);
  out = reader.HandleScript("ATTACH backed\nTWOBAG 0 1\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].rfind("OK ", 0), 0u) << out[1];
  EXPECT_GT(registry.Stats(registry.Find("backed").get()).reloads, 0u);

  std::remove(other.seg_path.c_str());
}

TEST(ServerRegistryTest, PerCollectionByteCeilingRefusesOversizedSeal) {
  CollectionRegistry::Options opts;
  opts.max_collection_bytes = 1;  // nothing real fits
  CollectionRegistry registry(opts);
  ServerSession session(&registry, nullptr);
  std::vector<std::string> out = session.HandleScript(
      "DICT item 2\napple\nbanana\nEND\n"
      "LOADU32 r item\n0 : 2\n1 : 1\nEND\n"
      "SEAL\n");
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().rfind("ERR E_RANGE", 0), 0u) << out.back();
  EXPECT_NE(out.back().find("per-collection ceiling"), std::string::npos);
  // Nothing was published.
  EXPECT_EQ(registry.Peek(registry.Default().get()), nullptr);
}

}  // namespace
}  // namespace bagc
