// Multi-tenant registry differential for the bagcd server: K segment-
// backed collections thrash through ATTACH / query / evict / lazy-reload
// cycles under a memory budget so tight that every publish evicts every
// other tenant, and each collection's responses — verdicts, failing
// pairs, witness rows down to their multiplicities — must stay
// bit-identical to a single-collection oracle registry that never
// evicts. A lazily reloaded snapshot is rebuilt from its BAGCSEG segment
// through a different code path than the session's LOADSEG + SEAL; this
// suite is what pins the two paths to identical ids, sort orders, and
// wire bytes (the canonical tenant covers the reload_canonical_ replay).
// Runs under the ASan/UBSan matrix leg via the `differential` label.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bag/bag_io.h"
#include "server/collection_registry.h"
#include "server/session.h"
#include "tuple/segment.h"

namespace bagc {
namespace {

struct Tenant {
  std::string name;
  std::string seg_path;
  bool canonical = false;
  std::vector<std::string> oracle;  // expected query responses
};

// Mixed query pass: consistency verdicts at every arity plus a witness
// with multiplicities. Responses are compared byte-for-byte, so this one
// script doubles as both the oracle probe and the thrash probe.
constexpr const char* kQueryScript =
    "TWOBAG 0 1\nPAIRWISE\nGLOBAL\nKWISE 2\nWITNESS 0 1 MINIMAL\n";

// Per-tenant bag text: multiplicities scale with the tenant index so
// every collection has distinct answers (tenant 0 consistent, higher
// tenants drift inconsistent), and cross-tenant cache mixups would be
// caught by the byte compare, not masked by identical data.
std::string TenantBagText(size_t k) {
  std::string text;
  text += "bag item store\n";
  text += "apple downtown : " + std::to_string(2 + k) + "\n";
  text += "banana uptown : " + std::to_string(1 + (k % 3)) + "\n";
  text += "cherry uptown : 2\nend\n";
  text += "bag store region\n";
  text += "downtown north : " + std::to_string(2 + k) + "\n";
  text += "uptown north : " + std::to_string(3 + (k % 3)) + "\n";
  text += "end\n";
  return text;
}

// Writes tenant k's collection as a segment file and returns its path.
std::string WriteTenantSegment(size_t k) {
  AttributeCatalog catalog;
  DictionarySet dicts;
  Result<std::vector<Bag>> bags =
      ParseCollection(TenantBagText(k), &catalog, &dicts);
  EXPECT_TRUE(bags.ok()) << bags.status().ToString();
  std::string path =
      testing::TempDir() + "registry_tenant" + std::to_string(k) + ".seg";
  EXPECT_TRUE(
      WriteSegmentFile(path, {"left", "right"}, *bags, catalog, dicts).ok());
  return path;
}

// ATTACH + LOADSEG + SEAL one tenant into `registry` and return the
// script responses (callers assert the last line is the SEAL ack).
std::vector<std::string> SealTenant(CollectionRegistry* registry,
                                    const Tenant& t) {
  ServerSession session(registry, nullptr);
  return session.HandleScript("ATTACH " + t.name + "\nLOADSEG " + t.seg_path +
                              "\n" + std::string(t.canonical ? "SEAL CANONICAL\n"
                                                             : "SEAL\n"));
}

TEST(ServerRegistryTest, EvictReloadThrashMatchesSingleCollectionOracle) {
  constexpr size_t kTenants = 5;
  std::vector<Tenant> tenants;
  for (size_t k = 0; k < kTenants; ++k) {
    Tenant t;
    t.name = "tenant" + std::to_string(k);
    t.seg_path = WriteTenantSegment(k);
    t.canonical = (k == 2);  // one tenant exercises the canonical replay
    tenants.push_back(std::move(t));
  }

  // Oracle answers: each tenant alone in an unlimited registry, queried
  // while resident — no eviction, no reload, the plain sealed path.
  for (Tenant& t : tenants) {
    CollectionRegistry oracle_registry;
    std::vector<std::string> sealed = SealTenant(&oracle_registry, t);
    ASSERT_FALSE(sealed.empty());
    ASSERT_EQ(sealed.back().rfind("OK SEAL 2 bags", 0), 0u) << sealed.back();
    ServerSession session(&oracle_registry, nullptr);
    session.HandleScript("ATTACH " + t.name + "\n");
    t.oracle = session.HandleScript(kQueryScript);
    ASSERT_FALSE(t.oracle.empty());
  }

  // The thrash registry: a 1-byte budget means every publish (seal OR
  // lazy reload) evicts every other resident tenant — maximal thrash.
  CollectionRegistry::Options opts;
  opts.mem_budget_bytes = 1;
  CollectionRegistry registry(opts);
  for (const Tenant& t : tenants) {
    std::vector<std::string> sealed = SealTenant(&registry, t);
    ASSERT_EQ(sealed.back().rfind("OK SEAL 2 bags", 0), 0u) << sealed.back();
  }
  EXPECT_GT(registry.evictions_total(), 0u);

  // Deterministic pseudo-random ATTACH/query thrash. Every probe either
  // hits the one resident tenant or forces a lazy segment reload; both
  // must answer with the oracle's exact bytes.
  ServerSession prober(&registry, nullptr);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<size_t>(state >> 33);
  };
  for (int round = 0; round < 60; ++round) {
    const Tenant& t = tenants[next() % kTenants];
    std::vector<std::string> bound =
        prober.HandleScript("ATTACH " + t.name + "\n");
    ASSERT_EQ(bound.size(), 1u);
    ASSERT_EQ(bound[0], "OK ATTACH " + t.name);
    std::vector<std::string> got = prober.HandleScript(kQueryScript);
    ASSERT_EQ(got, t.oracle) << "tenant " << t.name << " round " << round;
  }

  // The thrash really exercised the reload path, and the registry's
  // books balance: with a 1-byte budget at most one tenant is resident.
  uint64_t total_reloads = 0;
  size_t resident = 0;
  for (const Tenant& t : tenants) {
    CollectionRegistry::CollectionStats s =
        registry.Stats(registry.Find(t.name).get());
    EXPECT_TRUE(s.reloadable) << t.name;
    total_reloads += s.reloads;
    resident += s.resident ? 1 : 0;
  }
  EXPECT_GT(total_reloads, 0u);
  EXPECT_LE(resident, 1u);
  EXPECT_GT(registry.evictions_total(), kTenants);

  for (const Tenant& t : tenants) std::remove(t.seg_path.c_str());
}

TEST(ServerRegistryTest, EvictedStreamOnlyCollectionAnswersEStateUntilResealed) {
  CollectionRegistry::Options opts;
  opts.mem_budget_bytes = 1;
  CollectionRegistry registry(opts);

  // "ephemeral" is sealed from streamed rows: no segment, no reload path.
  ServerSession session(&registry, nullptr);
  std::vector<std::string> out = session.HandleScript(
      "ATTACH ephemeral\n"
      "DICT item 2\napple\nbanana\nEND\n"
      "LOADU32 r item\n0 : 2\n1 : 1\nEND\n"
      "LOADU32 s item\n0 : 2\n1 : 1\nEND\n"
      "SEAL\nTWOBAG r s\n");
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), "OK CONSISTENT");

  // Publishing another tenant under the 1-byte budget evicts it.
  Tenant other;
  other.name = "backed";
  other.seg_path = WriteTenantSegment(0);
  ASSERT_EQ(SealTenant(&registry, other).back().rfind("OK SEAL", 0), 0u);

  // The documented dead end, verbatim: E_STATE naming the collection,
  // the cause, and the recovery.
  out = session.HandleScript("TWOBAG r s\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0],
            "ERR E_STATE collection 'ephemeral' was evicted under the memory "
            "budget and has no segment to reload from; SEAL it again");

  // The recovery works: the session still holds its bags, so SEAL
  // republishes (reusing the lineage) and queries answer again.
  out = session.HandleScript("SEAL\nTWOBAG r s\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rfind("OK SEAL 2 bags", 0), 0u) << out[0];
  EXPECT_EQ(out[1], "OK CONSISTENT");

  // The segment-backed tenant, by contrast, reloads transparently even
  // after the re-seal above evicted it.
  ServerSession reader(&registry, nullptr);
  out = reader.HandleScript("ATTACH backed\nTWOBAG 0 1\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].rfind("OK ", 0), 0u) << out[1];
  EXPECT_GT(registry.Stats(registry.Find("backed").get()).reloads, 0u);

  std::remove(other.seg_path.c_str());
}

TEST(ServerRegistryTest, PerCollectionByteCeilingRefusesOversizedSeal) {
  CollectionRegistry::Options opts;
  opts.max_collection_bytes = 1;  // nothing real fits
  CollectionRegistry registry(opts);
  ServerSession session(&registry, nullptr);
  std::vector<std::string> out = session.HandleScript(
      "DICT item 2\napple\nbanana\nEND\n"
      "LOADU32 r item\n0 : 2\n1 : 1\nEND\n"
      "SEAL\n");
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().rfind("ERR E_RANGE", 0), 0u) << out.back();
  EXPECT_NE(out.back().find("per-collection ceiling"), std::string::npos);
  // Nothing was published.
  EXPECT_EQ(registry.Peek(registry.Default().get()), nullptr);
}

// Streams one bag of `rows` distinct arity-2 rows and SEALs it.
std::string WideLoadScript(size_t rows) {
  std::string script = "DICT item " + std::to_string(rows) + "\n";
  for (size_t i = 0; i < rows; ++i) script += "v" + std::to_string(i) + "\n";
  script += "END\nDICT store 2\nd\nu\nEND\n";
  script += "LOADU32 r item store\n";
  for (size_t i = 0; i < rows; ++i) {
    script += std::to_string(i) + " " + std::to_string(i % 2) + " : 3\n";
  }
  script += "END\nSEAL\n";
  return script;
}

uint64_t StatsSealedBytes(ServerSession* session) {
  for (const std::string& line : session->HandleScript("STATS\n")) {
    if (line.rfind("sealed_bytes ", 0) == 0) {
      return std::stoull(line.substr(std::string("sealed_bytes ").size()));
    }
  }
  ADD_FAILURE() << "STATS carried no sealed_bytes key";
  return 0;
}

// The columnar-only seal memory pin: every sealed bag at or above the
// columnar threshold holds NO live flat row vector (columnar_sealed),
// its resident bytes come in well under the row form it replaced, and
// the STATS sealed_bytes key surfaces the engine-resident total.
TEST(ServerRegistryTest, SealedBagsHoldNoRowVectorAndShrinkSealedBytes) {
  const size_t kRows = 64;  // comfortably above kColumnarMinRows
  ASSERT_GE(kRows, kColumnarMinRows);
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  std::vector<std::string> out = session.HandleScript(WideLoadScript(kRows));
  ASSERT_FALSE(out.empty());
  ASSERT_EQ(out.back().rfind("OK SEAL", 0), 0u) << out.back();
  std::shared_ptr<const EngineSnapshot> snapshot =
      registry.Peek(registry.Default().get());
  ASSERT_NE(snapshot, nullptr);
  for (const Bag& bag : snapshot->engine()->collection().bags()) {
    ASSERT_TRUE(bag.columnar_sealed())
        << "sealed serving bag still carries its flat row vector";
    // The ~halving pin: the columnar rep (ids + mults, no Tuples) must
    // be at most 60% of the row form's footprint for the same rows.
    Bag row_form = bag;
    Status unsealed = row_form.Add(bag.RowAt(0), 1);  // de-seals via COW
    ASSERT_TRUE(unsealed.ok());
    ASSERT_FALSE(row_form.columnar_sealed());
    EXPECT_LE(bag.ApproxBytes() * 10, row_form.ApproxBytes() * 6)
        << "columnar " << bag.ApproxBytes() << " bytes vs row "
        << row_form.ApproxBytes();
  }
  uint64_t sealed = StatsSealedBytes(&session);
  EXPECT_GT(sealed, 0u);
  EXPECT_EQ(sealed, snapshot->sealed_bytes());
}

// --columnar-min-rows plumbing: the registry option reaches the engine
// of every SEAL, moving the threshold both down (tiny bags convert) and
// up (nothing converts, the row form survives).
TEST(ServerRegistryTest, ColumnarMinRowsOptionControlsSealShape) {
  const std::string script =
      "DICT item 4\na\nb\nc\nd\nEND\n"
      "LOADU32 r item\n0 : 1\n1 : 2\n2 : 1\n3 : 5\nEND\nSEAL\n";
  {
    CollectionRegistry::Options opts;
    opts.columnar_min_rows = 2;  // far below the engine default
    CollectionRegistry registry(opts);
    ServerSession session(&registry, nullptr);
    ASSERT_EQ(session.HandleScript(script).back().rfind("OK SEAL", 0), 0u);
    std::shared_ptr<const EngineSnapshot> snapshot =
        registry.Peek(registry.Default().get());
    ASSERT_NE(snapshot, nullptr);
    for (const Bag& bag : snapshot->engine()->collection().bags()) {
      EXPECT_TRUE(bag.columnar_sealed());
    }
  }
  {
    CollectionRegistry::Options opts;
    opts.columnar_min_rows = size_t{1} << 30;  // nothing qualifies
    CollectionRegistry registry(opts);
    ServerSession session(&registry, nullptr);
    ASSERT_EQ(session.HandleScript(script).back().rfind("OK SEAL", 0), 0u);
    std::shared_ptr<const EngineSnapshot> snapshot =
        registry.Peek(registry.Default().get());
    ASSERT_NE(snapshot, nullptr);
    for (const Bag& bag : snapshot->engine()->collection().bags()) {
      EXPECT_FALSE(bag.columnar_sealed());
    }
  }
}

// The zero-copy twin: a snapshot lazily reloaded from its BAGCSEG
// segment serves the mmap'd columns in place — every reloaded bag is
// columnar-sealed over a *borrowed* store (no ids copied, no row
// vector), and answers stay bit-identical (the thrash differential
// above covers that; this pins the representation).
TEST(ServerRegistryTest, SegmentReloadServesBorrowedColumns) {
  Tenant t{"mmapped", WriteTenantSegment(1), false, {}};
  CollectionRegistry::Options opts;
  opts.mem_budget_bytes = 1;  // evict everything not most-recent
  CollectionRegistry registry(opts);
  ASSERT_EQ(SealTenant(&registry, t).back().rfind("OK SEAL", 0), 0u);
  // Publishing "default" evicts the segment-backed tenant...
  ServerSession other(&registry, nullptr);
  ASSERT_EQ(other
                .HandleScript("DICT item 2\na\nb\nEND\n"
                              "LOADU32 r item\n0 : 1\n1 : 1\nEND\nSEAL\n")
                .back()
                .rfind("OK SEAL", 0),
            0u);
  std::shared_ptr<CollectionRegistry::Collection> c = registry.Find(t.name);
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(registry.Peek(c.get()), nullptr) << "tenant was not evicted";
  // ...and the next query reloads it from the mapping.
  Result<std::shared_ptr<const EngineSnapshot>> reloaded =
      registry.Acquire(c.get());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_NE(*reloaded, nullptr);
  for (const Bag& bag : (*reloaded)->engine()->collection().bags()) {
    ASSERT_TRUE(bag.columnar_sealed());
    std::shared_ptr<const ColumnStore> store = bag.SharedColumns();
    ASSERT_NE(store, nullptr);
    EXPECT_TRUE(store->is_borrowed())
        << "reloaded bag copied its columns instead of borrowing the mmap";
  }
  std::remove(t.seg_path.c_str());
}

}  // namespace
}  // namespace bagc
