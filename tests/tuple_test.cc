// Unit tests for attributes, schemas, tuples, projections, and joins.
#include <gtest/gtest.h>

#include "tuple/attribute.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"

namespace bagc {
namespace {

TEST(AttributeCatalogTest, InternIsIdempotent) {
  AttributeCatalog catalog;
  AttrId a = catalog.Intern("A");
  AttrId b = catalog.Intern("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(catalog.Intern("A"), a);
  EXPECT_EQ(catalog.size(), 2u);
}

TEST(AttributeCatalogTest, RegisterRejectsDuplicates) {
  AttributeCatalog catalog;
  ASSERT_TRUE(catalog.Register("A").ok());
  EXPECT_FALSE(catalog.Register("A").ok());
  EXPECT_EQ(catalog.Register("A").status().code(), StatusCode::kAlreadyExists);
}

TEST(AttributeCatalogTest, LookupAndNames) {
  AttributeCatalog catalog;
  AttrId a = catalog.Intern("City");
  EXPECT_EQ(catalog.Name(a), "City");
  EXPECT_EQ(*catalog.Lookup("City"), a);
  EXPECT_FALSE(catalog.Lookup("Nope").ok());
  EXPECT_EQ(catalog.Name(999), "attr999");  // fallback
}

TEST(AttributeCatalogTest, DomainSizes) {
  AttributeCatalog catalog;
  AttrId a = catalog.Intern("A");
  EXPECT_FALSE(catalog.DomainSize(a).has_value());
  ASSERT_TRUE(catalog.SetDomainSize(a, 5).ok());
  EXPECT_EQ(*catalog.DomainSize(a), 5u);
  EXPECT_FALSE(catalog.SetDomainSize(a, 0).ok());
  EXPECT_FALSE(catalog.SetDomainSize(42, 3).ok());
}

TEST(SchemaTest, SortsAndDeduplicates) {
  Schema s{{3, 1, 2, 1}};
  EXPECT_EQ(s.arity(), 3u);
  EXPECT_EQ(s.at(0), 1u);
  EXPECT_EQ(s.at(1), 2u);
  EXPECT_EQ(s.at(2), 3u);
}

TEST(SchemaTest, ContainsAndIndexOf) {
  Schema s{{5, 9, 2}};
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(*s.IndexOf(2), 0u);
  EXPECT_EQ(*s.IndexOf(5), 1u);
  EXPECT_EQ(*s.IndexOf(9), 2u);
  EXPECT_FALSE(s.IndexOf(7).ok());
}

TEST(SchemaTest, SetOperations) {
  Schema x{{1, 2, 3}};
  Schema y{{3, 4}};
  EXPECT_EQ(Schema::Union(x, y), Schema({1, 2, 3, 4}));
  EXPECT_EQ(Schema::Intersect(x, y), Schema({3}));
  EXPECT_EQ(Schema::Difference(x, y), Schema({1, 2}));
  EXPECT_TRUE(Schema({1, 2}).IsSubsetOf(x));
  EXPECT_FALSE(x.IsSubsetOf(y));
  EXPECT_TRUE(Schema{}.IsSubsetOf(y));
}

TEST(SchemaTest, UnionAll) {
  EXPECT_EQ(Schema::UnionAll({Schema{{0, 1}}, Schema{{1, 2}}, Schema{{4}}}),
            Schema({0, 1, 2, 4}));
  EXPECT_EQ(Schema::UnionAll({}), Schema{});
}

TEST(SchemaTest, EmptySchema) {
  Schema empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.arity(), 0u);
  EXPECT_EQ(Schema::Intersect(empty, Schema{{1}}), empty);
}

TEST(ProjectorTest, RequiresSubset) {
  Schema from{{1, 2, 3}};
  EXPECT_TRUE(Projector::Make(from, Schema{{2}}).ok());
  EXPECT_FALSE(Projector::Make(from, Schema{{4}}).ok());
}

TEST(ProjectorTest, MapsSlots) {
  Schema from{{10, 20, 30}};
  Schema onto{{30, 10}};
  Projector p = *Projector::Make(from, onto);
  // onto sorted = {10, 30}: 10 at from-slot 0, 30 at from-slot 2.
  EXPECT_EQ(p.arity(), 2u);
  EXPECT_EQ(p.SourceIndex(0), 0u);
  EXPECT_EQ(p.SourceIndex(1), 2u);
}

TEST(TupleTest, ProjectionAndEmptyTuple) {
  Schema x{{1, 2, 3}};
  Tuple t{{7, 8, 9}};
  Projector p = *Projector::Make(x, Schema{{1, 3}});
  Tuple proj = t.Project(p);
  EXPECT_EQ(proj, Tuple({7, 9}));
  // Projection onto the empty schema yields the empty tuple.
  Projector pe = *Projector::Make(x, Schema{});
  EXPECT_EQ(t.Project(pe), Tuple{});
  EXPECT_EQ(t.Project(pe).arity(), 0u);
}

TEST(TupleTest, ValueOf) {
  Schema x{{4, 7}};
  Tuple t{{100, 200}};
  EXPECT_EQ(*t.ValueOf(x, 4), 100);
  EXPECT_EQ(*t.ValueOf(x, 7), 200);
  EXPECT_FALSE(t.ValueOf(x, 5).ok());
}

TEST(TupleTest, OrderingAndHash) {
  Tuple a{{1, 2}};
  Tuple b{{1, 3}};
  EXPECT_LT(a, b);
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_EQ(a.Hash(), Tuple({1, 2}).Hash());
}

TEST(TupleJoinerTest, JoinWithSharedAttributes) {
  Schema x{{1, 2}};
  Schema y{{2, 3}};
  TupleJoiner j = *TupleJoiner::Make(x, y);
  EXPECT_EQ(j.joined_schema(), Schema({1, 2, 3}));
  EXPECT_EQ(j.shared_schema(), Schema({2}));
  Tuple a{{10, 20}};   // A1=10, A2=20
  Tuple b{{20, 30}};   // A2=20, A3=30
  Tuple c{{21, 30}};   // A2=21
  EXPECT_TRUE(j.Joinable(a, b));
  EXPECT_FALSE(j.Joinable(a, c));
  EXPECT_EQ(j.Join(a, b), Tuple({10, 20, 30}));
}

TEST(TupleJoinerTest, DisjointSchemasAlwaysJoin) {
  Schema x{{1}};
  Schema y{{5}};
  TupleJoiner j = *TupleJoiner::Make(x, y);
  EXPECT_TRUE(j.shared_schema().empty());
  EXPECT_TRUE(j.Joinable(Tuple{{3}}, Tuple{{4}}));
  EXPECT_EQ(j.Join(Tuple{{3}}, Tuple{{4}}), Tuple({3, 4}));
}

TEST(TupleJoinerTest, IdenticalSchemas) {
  Schema x{{1, 2}};
  TupleJoiner j = *TupleJoiner::Make(x, x);
  Tuple a{{5, 6}};
  EXPECT_TRUE(j.Joinable(a, a));
  EXPECT_EQ(j.Join(a, a), a);
  EXPECT_FALSE(j.Joinable(a, Tuple({5, 7})));
}

TEST(SchemaTest, ToStringWithCatalog) {
  AttributeCatalog catalog;
  AttrId a = catalog.Intern("A");
  AttrId b = catalog.Intern("B");
  Schema s{{b, a}};
  EXPECT_EQ(s.ToString(catalog), "{A, B}");
  EXPECT_EQ(s.ToString(), "{0, 1}");
}

}  // namespace
}  // namespace bagc
