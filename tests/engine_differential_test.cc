// Differential tests for the batch ConsistencyEngine: on ~200 randomized
// collections (acyclic and cyclic, consistent-by-construction and
// perturbed), the engine's two-bag / pairwise / global answers must be
// bit-identical to the single-shot core path AND to a naive inline oracle
// that recomputes every marginal from scratch — including the identity of
// the first failing pair and the validity of every produced witness.
#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "core/global.h"
#include "core/pairwise.h"
#include "core/two_bag.h"
#include "engine/consistency_engine.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "util/random.h"

namespace bagc {
namespace {

// Naive oracle: Lemma 2(2) by direct marginal recomputation, no caching,
// no engine, no core entry point. This is the independent reference the
// differential compares both implementations against.
struct NaiveVerdict {
  bool consistent = true;
  std::pair<size_t, size_t> first_failing{0, 0};
};

NaiveVerdict NaivePairwise(const BagCollection& c) {
  for (size_t i = 0; i < c.size(); ++i) {
    for (size_t j = i + 1; j < c.size(); ++j) {
      Schema z = Schema::Intersect(c.bag(i).schema(), c.bag(j).schema());
      Bag iz = *c.bag(i).Marginal(z);
      Bag jz = *c.bag(j).Marginal(z);
      if (iz != jz) return {false, {i, j}};
    }
  }
  return {};
}

// One randomized collection: hypergraph family rotates with the seed, and
// roughly half the instances get one multiplicity bumped, which breaks
// consistency with high probability (and keeps the oracle honest when it
// happens not to).
Result<BagCollection> MakeWorkload(uint64_t seed, bool* cyclic) {
  Rng rng(seed);
  BagGenOptions options;
  options.support_size = 2 + rng.Below(8);
  options.domain_size = 2 + rng.Below(3);
  options.max_multiplicity = 4;
  Hypergraph h = [&] {
    switch (seed % 4) {
      case 0:
        return *MakePath(2 + seed % 4);
      case 1:
        return *MakeStar(2 + seed % 4);
      case 2:
        return *MakeRandomAcyclic(3 + seed % 3, 3, &rng);
      default:
        return *MakeCycle(3);
    }
  }();
  *cyclic = (seed % 4) == 3;
  BAGC_ASSIGN_OR_RETURN(BagCollection c,
                        MakeGloballyConsistentCollection(h, options, &rng));
  if (rng.Chance(1, 2)) {
    // Perturb: bump one multiplicity of one bag.
    std::vector<Bag> bags = c.bags();
    Bag& victim = bags[rng.Below(bags.size())];
    if (victim.IsEmpty()) {
      std::vector<Value> zeros(victim.schema().arity(), 0);
      EXPECT_TRUE(victim.Set(Tuple{std::move(zeros)}, 1).ok());
    } else {
      size_t pick = rng.Below(victim.SupportSize());
      Tuple t = victim.entries()[pick].first;
      uint64_t mult = victim.entries()[pick].second;
      EXPECT_TRUE(victim.Set(t, mult + 1).ok());
    }
    return BagCollection::Make(std::move(bags));
  }
  return c;
}

TEST(EngineDifferentialTest, MatchesSingleShotAndOracleOn200Workloads) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    bool cyclic = false;
    BagCollection c = *MakeWorkload(seed, &cyclic);

    NaiveVerdict oracle = NaivePairwise(c);

    // Single-shot core path.
    std::pair<size_t, size_t> single_pair{0, 0};
    bool single = *ArePairwiseConsistent(c, &single_pair);

    // Batch engine, sequential and parallel.
    EngineOptions par;
    par.num_threads = 4;
    ConsistencyEngine sequential = *ConsistencyEngine::Make(c);
    ConsistencyEngine parallel = *ConsistencyEngine::Make(c, par);
    PairwiseVerdict seq_verdict = *sequential.PairwiseAll();
    PairwiseVerdict par_verdict = *parallel.PairwiseAll();

    EXPECT_EQ(oracle.consistent, single);
    EXPECT_EQ(oracle.consistent, seq_verdict.consistent);
    EXPECT_EQ(oracle.consistent, par_verdict.consistent);
    if (!oracle.consistent) {
      EXPECT_EQ(oracle.first_failing, single_pair);
      EXPECT_EQ(oracle.first_failing, seq_verdict.witness_pair);
      EXPECT_EQ(oracle.first_failing, par_verdict.witness_pair);
    }

    // Every individual two-bag answer matches the single-shot decision.
    for (size_t i = 0; i < c.size(); ++i) {
      for (size_t j = i + 1; j < c.size(); ++j) {
        bool direct = *AreConsistent(c.bag(i), c.bag(j));
        EXPECT_EQ(direct, *sequential.TwoBag(i, j));
        EXPECT_EQ(direct, *sequential.TwoBag(j, i));
        EXPECT_EQ(direct, *parallel.TwoBag(i, j));
      }
    }

    // Global agrees with the single-shot dispatcher (these instances are
    // small enough that the exact solver on the cyclic ones is cheap).
    bool single_global = *IsGloballyConsistent(c);
    EXPECT_EQ(single_global, *sequential.Global());
    EXPECT_EQ(single_global, *parallel.Global());

    // Witness validity on the consistent instances.
    if (oracle.consistent && !cyclic) {
      auto witness = *sequential.SolveGlobalAcyclic();
      ASSERT_TRUE(witness.has_value());
      EXPECT_TRUE(*c.IsWitness(*witness));
      auto single_witness = *SolveGlobalConsistencyAcyclic(c);
      ASSERT_TRUE(single_witness.has_value());
      EXPECT_TRUE(*c.IsWitness(*single_witness));
    }
    if (seed % 5 == 0 && c.size() >= 2) {
      bool pair_ok = *AreConsistent(c.bag(0), c.bag(1));
      auto engine_witness = *sequential.Witness(0, 1, seed % 2 == 0);
      auto single_witness = seed % 2 == 0 ? *FindMinimalWitness(c.bag(0), c.bag(1))
                                          : *FindWitness(c.bag(0), c.bag(1));
      EXPECT_EQ(pair_ok, engine_witness.has_value());
      EXPECT_EQ(pair_ok, single_witness.has_value());
      if (pair_ok) {
        EXPECT_TRUE(*IsWitness(*engine_witness, c.bag(0), c.bag(1)));
        EXPECT_TRUE(*IsWitness(*single_witness, c.bag(0), c.bag(1)));
      }
    }
  }
}

TEST(EngineDifferentialTest, ConsistentPairsStayConsistentThroughEngine) {
  // Directed two-bag differential on the dedicated pair generators, which
  // exercise shared schemas the collection generators rarely hit (equal
  // schemas, disjoint schemas).
  Rng rng(777);
  BagGenOptions options;
  options.support_size = 12;
  options.domain_size = 3;
  std::vector<std::pair<Schema, Schema>> shapes = {
      {Schema{{0, 1}}, Schema{{1, 2}}},
      {Schema{{0, 1}}, Schema{{0, 1}}},
      {Schema{{0}}, Schema{{1}}},
      {Schema{{0, 1, 2}}, Schema{{2, 3}}},
  };
  for (const auto& [x, y] : shapes) {
    for (int trial = 0; trial < 10; ++trial) {
      auto good = *MakeConsistentPair(x, y, options, &rng);
      auto bad = *MakeInconsistentPair(x, y, options, &rng);
      for (bool expected : {true, false}) {
        const auto& pair = expected ? good : bad;
        BagCollection c = *BagCollection::Make({pair.first, pair.second});
        ConsistencyEngine engine = *ConsistencyEngine::Make(c);
        EXPECT_EQ(expected, *AreConsistent(pair.first, pair.second));
        EXPECT_EQ(expected, *engine.TwoBag(0, 1));
        EXPECT_EQ(expected, (*engine.PairwiseAll()).consistent);
      }
    }
  }
}

}  // namespace
}  // namespace bagc
