// Unit tests for bags (marginals, bag join, containment, size measures)
// and relations (projection, join, semijoin). Includes the paper's §2
// running example and the marginal coherence laws R'[Z] = R[Z]' and
// R[Z][W] = R[W].
#include <gtest/gtest.h>

#include <limits>

#include "bag/bag.h"
#include "bag/relation.h"
#include "generators/workloads.h"
#include "util/random.h"

namespace bagc {
namespace {

Bag PaperSectionTwoBag() {
  // R(A, B) = {(a1,b1):2, (a2,b2):1, (a3,b3):5} with a_i = i, b_i = 10+i.
  return *MakeBag(Schema{{0, 1}},
                  {{{1, 11}, 2}, {{2, 12}, 1}, {{3, 13}, 5}});
}

TEST(BagTest, SetAddMultiplicity) {
  Bag bag(Schema{{0, 1}});
  Tuple t{{1, 2}};
  EXPECT_EQ(bag.Multiplicity(t), 0u);
  ASSERT_TRUE(bag.Set(t, 3).ok());
  EXPECT_EQ(bag.Multiplicity(t), 3u);
  ASSERT_TRUE(bag.Add(t, 4).ok());
  EXPECT_EQ(bag.Multiplicity(t), 7u);
  ASSERT_TRUE(bag.Set(t, 0).ok());
  EXPECT_EQ(bag.SupportSize(), 0u);
  EXPECT_TRUE(bag.IsEmpty());
}

TEST(BagTest, ArityMismatchRejected) {
  Bag bag(Schema{{0, 1}});
  EXPECT_FALSE(bag.Set(Tuple{{1}}, 1).ok());
  EXPECT_FALSE(bag.Add(Tuple{{1, 2, 3}}, 1).ok());
}

TEST(BagTest, AddOverflowDetected) {
  Bag bag(Schema{{0}});
  Tuple t{{1}};
  ASSERT_TRUE(bag.Set(t, std::numeric_limits<uint64_t>::max()).ok());
  EXPECT_FALSE(bag.Add(t, 1).ok());
}

TEST(BagTest, MarginalMatchesEquationTwo) {
  Bag bag = PaperSectionTwoBag();
  Bag a = *bag.Marginal(Schema{{0}});
  EXPECT_EQ(a.Multiplicity(Tuple{{1}}), 2u);
  EXPECT_EQ(a.Multiplicity(Tuple{{2}}), 1u);
  EXPECT_EQ(a.Multiplicity(Tuple{{3}}), 5u);
}

TEST(BagTest, MarginalOntoEmptySchemaIsCardinality) {
  Bag bag = PaperSectionTwoBag();
  Bag empty = *bag.Marginal(Schema{});
  EXPECT_EQ(empty.SupportSize(), 1u);
  EXPECT_EQ(empty.Multiplicity(Tuple{}), 8u);  // 2+1+5
}

TEST(BagTest, MarginalComposition) {
  // R[Z][W] == R[W] for W ⊆ Z ⊆ X (paper §2 fact).
  Rng rng(42);
  BagGenOptions options;
  options.support_size = 40;
  options.domain_size = 3;
  Bag bag = *MakeRandomBag(Schema{{0, 1, 2, 3}}, options, &rng);
  Schema z{{0, 1, 2}};
  Schema w{{0, 2}};
  EXPECT_EQ(*bag.Marginal(z)->Marginal(w), *bag.Marginal(w));
}

TEST(BagTest, SupportCommutesWithMarginal) {
  // R'[Z] == R[Z]' (paper §2 fact).
  Rng rng(43);
  BagGenOptions options;
  options.support_size = 30;
  options.domain_size = 3;
  Bag bag = *MakeRandomBag(Schema{{0, 1, 2}}, options, &rng);
  Schema z{{0, 2}};
  Relation lhs = *Relation::SupportOf(bag).Project(z);
  Relation rhs = Relation::SupportOf(*bag.Marginal(z));
  EXPECT_EQ(lhs, rhs);
}

TEST(BagTest, MarginalRequiresSubschema) {
  Bag bag = PaperSectionTwoBag();
  EXPECT_FALSE(bag.Marginal(Schema{{0, 7}}).ok());
}

TEST(BagTest, BagJoinMultiplicities) {
  // (R ⋈_b S)(t) = R(t[X]) * S(t[Y]).
  Bag r = *MakeBag(Schema{{0, 1}}, {{{1, 2}, 3}, {{1, 3}, 2}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{2, 7}, 5}, {{2, 8}, 1}, {{4, 9}, 6}});
  Bag j = *Bag::Join(r, s);
  EXPECT_EQ(j.schema(), Schema({0, 1, 2}));
  EXPECT_EQ(j.Multiplicity(Tuple{{1, 2, 7}}), 15u);
  EXPECT_EQ(j.Multiplicity(Tuple{{1, 2, 8}}), 3u);
  EXPECT_EQ(j.Multiplicity(Tuple{{1, 3, 7}}), 0u);
  EXPECT_EQ(j.SupportSize(), 2u);
}

TEST(BagTest, BagJoinSupportIsJoinOfSupports) {
  Rng rng(7);
  BagGenOptions options;
  options.support_size = 12;
  options.domain_size = 3;
  Bag r = *MakeRandomBag(Schema{{0, 1}}, options, &rng);
  Bag s = *MakeRandomBag(Schema{{1, 2}}, options, &rng);
  Bag j = *Bag::Join(r, s);
  Relation expected =
      *Relation::Join(Relation::SupportOf(r), Relation::SupportOf(s));
  EXPECT_EQ(Relation::SupportOf(j), expected);
}

TEST(BagTest, JoinOverflowDetected) {
  uint64_t big = std::numeric_limits<uint64_t>::max() / 2;
  Bag r = *MakeBag(Schema{{0}}, {{{1}, big}});
  Bag s = *MakeBag(Schema{{1}}, {{{2}, 3}});
  EXPECT_FALSE(Bag::Join(r, s).ok());
}

TEST(BagTest, Containment) {
  Bag small = *MakeBag(Schema{{0}}, {{{1}, 2}});
  Bag large = *MakeBag(Schema{{0}}, {{{1}, 3}, {{2}, 1}});
  EXPECT_TRUE(Bag::Contained(small, large));
  EXPECT_FALSE(Bag::Contained(large, small));
  EXPECT_TRUE(Bag::Contained(small, small));
  Bag other_schema = *MakeBag(Schema{{1}}, {{{1}, 9}});
  EXPECT_FALSE(Bag::Contained(small, other_schema));
}

TEST(BagTest, SizeMeasures) {
  // Multiplicities 2, 1, 5: ||R||supp=3, mu=5, mb=bits of 6 = 3,
  // u=8, b = bits(3)+bits(2)+bits(6) = 2+2+3 = 7.
  Bag bag = PaperSectionTwoBag();
  EXPECT_EQ(bag.SupportSize(), 3u);
  EXPECT_EQ(bag.MultiplicityBound(), 5u);
  EXPECT_EQ(bag.MultiplicitySize(), 3u);
  EXPECT_EQ(*bag.UnarySize(), 8u);
  EXPECT_EQ(bag.BinarySize(), 7u);
  // ||R||_u <= ||R||_supp * ||R||_mu and ||R||_b <= ||R||_supp * ||R||_mb.
  EXPECT_LE(*bag.UnarySize(), bag.SupportSize() * bag.MultiplicityBound());
  EXPECT_LE(bag.BinarySize(), bag.SupportSize() * bag.MultiplicitySize());
}

TEST(BagTest, MakeBagRejectsDuplicatesAndBadArity) {
  EXPECT_FALSE(MakeBag(Schema{{0}}, {{{1}, 2}, {{1}, 3}}).ok());
  EXPECT_FALSE(MakeBag(Schema{{0, 1}}, {{{1}, 2}}).ok());
}

TEST(BagTest, EmptySchemaBagActsAsScalar) {
  Bag scalar(Schema{});
  ASSERT_TRUE(scalar.Set(Tuple{}, 7).ok());
  EXPECT_EQ(scalar.Multiplicity(Tuple{}), 7u);
  EXPECT_EQ(scalar.SupportSize(), 1u);
}

TEST(RelationTest, ProjectAndJoin) {
  Relation r = *MakeRelation(Schema{{0, 1}}, {{0, 0}, {1, 1}});
  Relation s = *MakeRelation(Schema{{1, 2}}, {{0, 1}, {1, 0}});
  Relation j = *Relation::Join(r, s);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.Contains(Tuple{{0, 0, 1}}));
  EXPECT_TRUE(j.Contains(Tuple{{1, 1, 0}}));
  Relation p = *j.Project(Schema{{0, 2}});
  EXPECT_EQ(p.size(), 2u);
}

TEST(RelationTest, SemijoinFiltersDanglingTuples) {
  Relation r = *MakeRelation(Schema{{0, 1}}, {{0, 0}, {1, 1}, {2, 2}});
  Relation s = *MakeRelation(Schema{{1, 2}}, {{0, 9}, {2, 9}});
  Relation sj = *Relation::Semijoin(r, s);
  EXPECT_EQ(sj.size(), 2u);
  EXPECT_TRUE(sj.Contains(Tuple{{0, 0}}));
  EXPECT_TRUE(sj.Contains(Tuple{{2, 2}}));
  EXPECT_FALSE(sj.Contains(Tuple{{1, 1}}));
}

TEST(RelationTest, JoinAllRequiresNonEmpty) {
  EXPECT_FALSE(Relation::JoinAll({}).ok());
}

TEST(RelationTest, SupportRoundTrip) {
  Bag bag = PaperSectionTwoBag();
  Relation support = Relation::SupportOf(bag);
  EXPECT_EQ(support.size(), 3u);
  Bag back = support.ToBag();
  EXPECT_EQ(back.SupportSize(), 3u);
  EXPECT_EQ(back.Multiplicity(Tuple{{1, 11}}), 1u);
}

TEST(RelationTest, RelationsAreZeroOneBags) {
  // A relation viewed as a bag has every multiplicity equal to 1.
  Relation r = *MakeRelation(Schema{{0}}, {{3}, {4}});
  Bag b = r.ToBag();
  for (const auto& [t, mult] : b.entries()) {
    (void)t;
    EXPECT_EQ(mult, 1u);
  }
}

}  // namespace
}  // namespace bagc
