// Tests for the diagnostic report API and the Yannakakis acyclic join.
#include <gtest/gtest.h>

#include "core/report.h"
#include "core/tseitin.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "setcase/relation_consistency.h"
#include "util/random.h"

namespace bagc {
namespace {

TEST(ReportTest, AcyclicConsistentCollection) {
  Rng rng(301);
  BagGenOptions options;
  options.support_size = 12;
  options.domain_size = 3;
  BagCollection c =
      *MakeGloballyConsistentCollection(*MakePath(4), options, &rng);
  ConsistencyReport report = *AnalyzeCollection(c);
  EXPECT_TRUE(report.acyclic);
  EXPECT_FALSE(report.obstruction.has_value());
  EXPECT_TRUE(report.pairwise_consistent);
  EXPECT_FALSE(report.failing_pair.has_value());
  EXPECT_TRUE(report.global_decided);
  EXPECT_TRUE(report.globally_consistent);
  ASSERT_TRUE(report.witness.has_value());
  EXPECT_TRUE(*c.IsWitness(*report.witness));
  EXPECT_LE(report.witness_support, report.support_bound);
  AttributeCatalog catalog;
  std::string text = report.ToString(catalog);
  EXPECT_NE(text.find("acyclic"), std::string::npos);
  EXPECT_NE(text.find("consistent"), std::string::npos);
}

TEST(ReportTest, PairwiseInconsistentShortCircuits) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 2}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}});
  BagCollection c = *BagCollection::Make({r, s});
  ConsistencyReport report = *AnalyzeCollection(c);
  EXPECT_FALSE(report.pairwise_consistent);
  ASSERT_TRUE(report.failing_pair.has_value());
  EXPECT_EQ(*report.failing_pair, (std::pair<size_t, size_t>{0, 1}));
  EXPECT_TRUE(report.global_decided);
  EXPECT_FALSE(report.globally_consistent);
  EXPECT_FALSE(report.witness.has_value());
}

TEST(ReportTest, CyclicCollectionCarriesObstruction) {
  BagCollection c = *BagCollection::Make(*MakeTseitinCollection(*MakeCycle(4)));
  ConsistencyReport report = *AnalyzeCollection(c);
  EXPECT_FALSE(report.acyclic);
  ASSERT_TRUE(report.obstruction.has_value());
  EXPECT_FALSE(report.obstruction->is_hn);  // C4 core is the chordless cycle
  EXPECT_TRUE(report.pairwise_consistent);
  EXPECT_TRUE(report.global_decided);
  EXPECT_FALSE(report.globally_consistent);
  AttributeCatalog catalog;
  std::string text = report.ToString(catalog);
  EXPECT_NE(text.find("CYCLIC"), std::string::npos);
  EXPECT_NE(text.find("genuinely global"), std::string::npos);
}

TEST(ReportTest, BudgetExhaustionIsUndecidedNotFatal) {
  Rng rng(302);
  BagGenOptions options;
  options.support_size = 16;
  options.domain_size = 4;
  options.max_multiplicity = 50;
  BagCollection c =
      *MakeGloballyConsistentCollection(*MakeCycle(3), options, &rng);
  GlobalSolveOptions tight;
  tight.search.node_limit = 1;
  ConsistencyReport report = *AnalyzeCollection(c, tight);
  EXPECT_TRUE(report.pairwise_consistent);
  EXPECT_FALSE(report.global_decided);
  AttributeCatalog catalog;
  EXPECT_NE(report.ToString(catalog).find("UNDECIDED"), std::string::npos);
}

TEST(YannakakisJoinTest, AgreesWithNaiveFold) {
  Rng rng(303);
  BagGenOptions options;
  options.support_size = 12;
  options.domain_size = 3;
  for (int trial = 0; trial < 25; ++trial) {
    Hypergraph h = *MakeRandomAcyclic(2 + rng.Below(4), 1 + rng.Below(3), &rng);
    std::vector<Relation> rels;
    for (const Schema& e : h.edges()) {
      rels.push_back(Relation::SupportOf(*MakeRandomBag(e, options, &rng)));
    }
    bool any_empty = false;
    for (const Relation& r : rels) any_empty |= r.IsEmpty();
    if (any_empty) continue;
    Relation via_yannakakis = *JoinAcyclic(rels);
    Relation via_fold = *Relation::JoinAll(rels);
    EXPECT_EQ(via_yannakakis, via_fold) << h.ToString();
  }
}

TEST(YannakakisJoinTest, RejectsCyclicSchemas) {
  Relation r = *MakeRelation(Schema{{0, 1}}, {{0, 0}});
  Relation s = *MakeRelation(Schema{{1, 2}}, {{0, 0}});
  Relation t = *MakeRelation(Schema{{0, 2}}, {{0, 0}});
  EXPECT_FALSE(JoinAcyclic({r, s, t}).ok());
}

TEST(YannakakisJoinTest, DanglingTuplesDoNotInflateIntermediates) {
  // A relation full of dangling tuples: after full reduction the join is
  // tiny even though the naive fold touches the dangling tuples.
  Relation r = *MakeRelation(Schema{{0, 1}}, {{0, 0}});
  std::vector<std::vector<Value>> many;
  for (Value v = 0; v < 100; ++v) many.push_back({v + 1000, v});
  many.push_back({0, 7});
  Relation s = *MakeRelation(Schema{{1, 2}}, many);
  Relation t = *MakeRelation(Schema{{2, 3}}, {{7, 9}});
  Relation join = *JoinAcyclic({r, s, t});
  EXPECT_EQ(join.size(), 1u);
  EXPECT_TRUE(join.Contains(Tuple{{0, 0, 7, 9}}));
}

}  // namespace
}  // namespace bagc
