// Randomized property tests for the ConsistencyEngine, all under one
// seeded Rng so every run is reproducible:
//   - pairwise consistency is invariant under bag reordering and under
//     attribute renaming (both are isomorphisms of the instance);
//   - the sharded sweep returns identical verdicts — including the
//     lexicographically-first witness pair — for 1, 2, and 8 workers;
//   - cached-marginal answers are stable across repeated queries on one
//     engine and match uncached recomputation;
//   - regression: PairwiseAll()'s early exit drains in-flight pool tasks
//     before returning, so destroying the engine (or the caller's stack
//     frame) immediately afterwards is safe. Run under ASan/UBSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/global.h"
#include "core/pairwise.h"
#include "engine/consistency_engine.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "util/random.h"

namespace bagc {
namespace {

// Applies an attribute-id permutation to a bag: schema attributes map
// through `perm` and tuple slots follow the renamed schema's sorted layout.
Bag RenameBag(const Bag& b, const std::vector<AttrId>& perm) {
  std::vector<AttrId> renamed;
  renamed.reserve(b.schema().arity());
  for (AttrId a : b.schema().attrs()) renamed.push_back(perm[a]);
  Schema schema(renamed);
  BagBuilder builder(schema);
  builder.Reserve(b.SupportSize());
  for (size_t e = 0; e < b.SupportSize(); ++e) {
    Tuple t = b.RowAt(e);
    std::vector<Value> values(schema.arity());
    for (size_t slot = 0; slot < b.schema().arity(); ++slot) {
      values[*schema.IndexOf(perm[b.schema().at(slot)])] = t.at(slot);
    }
    EXPECT_TRUE(builder.Add(Tuple{std::move(values)}, b.MultiplicityAt(e)).ok());
  }
  return *builder.Build();
}

Result<BagCollection> MakeMixedCollection(uint64_t seed, bool perturb) {
  Rng rng(seed);
  BagGenOptions options;
  options.support_size = 3 + rng.Below(10);
  options.domain_size = 2 + rng.Below(3);
  options.max_multiplicity = 5;
  Hypergraph h = seed % 2 == 0 ? *MakePath(3 + seed % 3)
                               : *MakeRandomAcyclic(4, 3, &rng);
  BAGC_ASSIGN_OR_RETURN(BagCollection c,
                        MakeGloballyConsistentCollection(h, options, &rng));
  if (!perturb) return c;
  std::vector<Bag> bags = c.bags();
  Bag& victim = bags[rng.Below(bags.size())];
  if (victim.IsEmpty()) {
    std::vector<Value> zeros(victim.schema().arity(), 0);
    EXPECT_TRUE(victim.Set(Tuple{std::move(zeros)}, 1).ok());
  } else {
    size_t pick = rng.Below(victim.SupportSize());
    EXPECT_TRUE(
        victim.Set(victim.RowAt(pick), victim.MultiplicityAt(pick) + 2).ok());
  }
  return BagCollection::Make(std::move(bags));
}

TEST(EnginePropertyTest, PairwiseInvariantUnderBagReordering) {
  Rng rng(2024);
  for (uint64_t seed = 0; seed < 30; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    BagCollection c = *MakeMixedCollection(seed, seed % 2 == 1);
    ConsistencyEngine engine = *ConsistencyEngine::Make(c);
    PairwiseVerdict base = *engine.PairwiseAll();

    std::vector<size_t> order(c.size());
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);
    std::vector<Bag> shuffled;
    shuffled.reserve(order.size());
    for (size_t i : order) shuffled.push_back(c.bag(i));
    BagCollection permuted = *BagCollection::Make(std::move(shuffled));
    ConsistencyEngine permuted_engine = *ConsistencyEngine::Make(permuted);
    PairwiseVerdict after = *permuted_engine.PairwiseAll();

    EXPECT_EQ(base.consistent, after.consistent);
    if (!after.consistent) {
      // The first failing pair depends on the order, but it must be a
      // genuinely inconsistent pair of the permuted collection.
      auto [i, j] = after.witness_pair;
      Schema z = Schema::Intersect(permuted.bag(i).schema(),
                                   permuted.bag(j).schema());
      EXPECT_NE(*permuted.bag(i).Marginal(z), *permuted.bag(j).Marginal(z));
    }
  }
}

TEST(EnginePropertyTest, PairwiseInvariantUnderAttributeRenaming) {
  Rng rng(4096);
  for (uint64_t seed = 0; seed < 30; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    BagCollection c = *MakeMixedCollection(seed, seed % 2 == 1);

    // Random permutation of the attribute-id space actually in use.
    AttrId max_attr = 0;
    for (AttrId a : c.union_schema().attrs()) max_attr = std::max(max_attr, a);
    std::vector<AttrId> perm(max_attr + 1);
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(&perm);

    std::vector<Bag> renamed;
    renamed.reserve(c.size());
    for (const Bag& b : c.bags()) renamed.push_back(RenameBag(b, perm));
    BagCollection r = *BagCollection::Make(std::move(renamed));

    ConsistencyEngine original = *ConsistencyEngine::Make(c);
    ConsistencyEngine mapped = *ConsistencyEngine::Make(r);
    PairwiseVerdict before = *original.PairwiseAll();
    PairwiseVerdict after = *mapped.PairwiseAll();
    EXPECT_EQ(before.consistent, after.consistent);
    if (!before.consistent) {
      // Renaming preserves bag order, so the first failing pair is the
      // same index pair.
      EXPECT_EQ(before.witness_pair, after.witness_pair);
    }
    EXPECT_EQ(*original.Global(), *mapped.Global());
  }
}

TEST(EnginePropertyTest, VerdictIdenticalAcrossWorkerCounts) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    BagCollection c = *MakeMixedCollection(seed, seed % 2 == 1);
    std::optional<PairwiseVerdict> reference;
    for (size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
      EngineOptions options;
      options.num_threads = workers;
      ConsistencyEngine engine = *ConsistencyEngine::Make(c, options);
      PairwiseVerdict v = *engine.PairwiseAll();
      if (!reference.has_value()) {
        reference = v;
      } else {
        EXPECT_EQ(reference->consistent, v.consistent);
        EXPECT_EQ(reference->witness_pair, v.witness_pair);
      }
      EXPECT_EQ(reference->consistent, *engine.Global());
    }
  }
}

TEST(EnginePropertyTest, CachedAnswersStableAcrossRepeatedQueries) {
  BagCollection c = *MakeMixedCollection(11, false);
  EngineOptions options;
  options.num_threads = 2;
  ConsistencyEngine engine = *ConsistencyEngine::Make(c, options);

  PairwiseVerdict first = *engine.PairwiseAll();
  for (int round = 0; round < 3; ++round) {
    PairwiseVerdict again = *engine.PairwiseAll();
    EXPECT_EQ(first.consistent, again.consistent);
    EXPECT_EQ(first.witness_pair, again.witness_pair);
    EXPECT_EQ(first.consistent, *engine.Global());
    for (size_t i = 0; i < c.size(); ++i) {
      for (size_t j = 0; j < c.size(); ++j) {
        EXPECT_EQ(*engine.TwoBag(i, j), *engine.TwoBag(i, j));
      }
    }
  }

  // Cached marginals and probes agree with uncached recomputation.
  for (size_t i = 0; i < c.size(); ++i) {
    for (size_t j = 0; j < c.size(); ++j) {
      if (i == j) continue;
      Schema z = Schema::Intersect(c.bag(i).schema(), c.bag(j).schema());
      const Bag* cached = engine.CachedMarginal(i, z);
      ASSERT_NE(cached, nullptr);
      Bag fresh = *c.bag(i).Marginal(z);
      EXPECT_EQ(fresh, *cached);
      for (size_t e = 0; e < fresh.SupportSize(); ++e) {
        Tuple t = fresh.RowAt(e);
        uint64_t mult = fresh.MultiplicityAt(e);
        EXPECT_EQ(mult, *engine.ProbeMarginal(i, z, t));
        EXPECT_EQ(mult, *engine.ProbeMarginal(i, z, t));  // probe is stable
      }
    }
  }
}

TEST(EnginePropertyTest, EarlyExitDrainsPoolBeforeEngineDestruction) {
  // Regression: the sharded sweep's early exit must not return while pool
  // tasks are still touching the pair list or the sweep's stack frame —
  // destroying the engine right after PairwiseAll() has to be safe. An
  // inconsistent pair near the front maximizes in-flight work at exit
  // time. ASan (CI sanitizer job) turns any straggler into a hard error.
  Rng rng(31337);
  BagGenOptions options;
  options.support_size = 64;
  options.domain_size = 4;
  options.max_multiplicity = 6;
  Hypergraph h = *MakePath(10);
  for (int round = 0; round < 25; ++round) {
    BagCollection base = *MakeGloballyConsistentCollection(h, options, &rng);
    std::vector<Bag> bags = base.bags();
    ASSERT_FALSE(bags[0].IsEmpty());
    ASSERT_TRUE(
        bags[0].Set(bags[0].RowAt(0), bags[0].MultiplicityAt(0) + 1).ok());
    BagCollection c = *BagCollection::Make(std::move(bags));
    PairwiseVerdict verdict;
    {
      EngineOptions engine_options;
      engine_options.num_threads = 8;
      ConsistencyEngine engine = *ConsistencyEngine::Make(c, engine_options);
      verdict = *engine.PairwiseAll();
    }  // engine (and its pool) destroyed immediately after the early exit
    EXPECT_FALSE(verdict.consistent);
    EXPECT_EQ(verdict.witness_pair.first, 0u);
  }
}

TEST(EnginePropertyTest, KWiseSweepReusesSealedMarginalsAndNeverReInterns) {
  // Regression for the ROADMAP "throwaway engine per subset" gap: the
  // k-wise sweep must answer every subset's pairwise precheck from the
  // parent engine's sealed marginal cache (each pair filled at most once
  // across ALL subsets) and must never touch the shared dictionaries.
  Rng rng(5150);
  BagGenOptions options;
  options.support_size = 12;
  options.domain_size = 3;
  options.max_multiplicity = 4;
  Hypergraph h = *MakePath(6);  // acyclic: every subset decided by Theorem 2
  BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);

  // Re-encode the collection through a shared DictionarySet so the engine
  // carries real dictionaries whose intern counters we can watch.
  auto dicts = std::make_shared<DictionarySet>();
  std::vector<Bag> interned;
  for (const Bag& b : c.bags()) {
    BagBuilder builder(b.schema());
    for (size_t e = 0; e < b.SupportSize(); ++e) {
      Tuple t = b.RowAt(e);
      std::vector<std::string> tokens;
      for (size_t i = 0; i < t.arity(); ++i) {
        tokens.push_back("tok" + std::to_string(t.at(i)));
      }
      ASSERT_TRUE(builder.AddExternal(tokens, b.MultiplicityAt(e), dicts.get()).ok());
    }
    interned.push_back(*builder.Build());
  }
  BagCollection ic = *BagCollection::Make(std::move(interned));

  EngineOptions engine_options;
  engine_options.lazy_seal = true;
  engine_options.dictionaries = dicts;
  ConsistencyEngine engine = *ConsistencyEngine::MakeView(ic, engine_options);
  ASSERT_EQ(engine.dictionaries(), dicts.get());

  uint64_t interns_before = dicts->total_intern_calls();
  ASSERT_TRUE(*engine.KWiseConsistent(3));
  uint64_t fills_after_first = engine.marginal_fills();
  // Each pair's two cached slots fill at most once for the WHOLE sweep,
  // even though most pairs appear in many 3-subsets.
  size_t m = ic.size();
  EXPECT_LE(fills_after_first, m * (m - 1));
  EXPECT_GT(fills_after_first, 0u);

  // A second sweep — and a deeper one — is answered entirely from cache.
  ASSERT_TRUE(*engine.KWiseConsistent(3));
  EXPECT_EQ(engine.marginal_fills(), fills_after_first);
  ASSERT_TRUE(*engine.KWiseConsistent(2));
  EXPECT_EQ(engine.marginal_fills(), fills_after_first);

  // No re-interning anywhere in the sweep: the dictionaries saw zero
  // Intern() calls and the engine still shares the same set.
  EXPECT_EQ(dicts->total_intern_calls(), interns_before);
  EXPECT_EQ(engine.shared_dictionaries().get(), dicts.get());

  // The reused-cache sweep agrees with the single-shot wrapper.
  EXPECT_TRUE(*AreKWiseConsistent(ic, 3));
}

TEST(EnginePropertyTest, KWiseMatchesHistoricalPerSubsetSolve) {
  // Differential against the pre-engine semantics: exact global solve of
  // every size-min(k,m) subcollection, throwaway state each time.
  Rng rng(6021);
  for (uint64_t seed = 0; seed < 30; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    BagGenOptions options;
    options.support_size = 2 + rng.Below(6);
    options.domain_size = 2 + rng.Below(3);
    options.max_multiplicity = 4;
    Hypergraph h = seed % 2 == 0 ? *MakeCycle(4) : *MakePath(4);
    BagCollection base = *MakeGloballyConsistentCollection(h, options, &rng);
    std::vector<Bag> bags = base.bags();
    if (rng.Chance(1, 2) && !bags[0].IsEmpty()) {
      ASSERT_TRUE(
          bags[0].Set(bags[0].RowAt(0), bags[0].MultiplicityAt(0) + 1).ok());
    }
    BagCollection c = *BagCollection::Make(std::move(bags));
    for (size_t k : {size_t{2}, size_t{3}, c.size()}) {
      // Historical oracle: exact solve per lexicographic subset.
      std::optional<std::vector<size_t>> oracle_failing;
      bool oracle = true;
      size_t size = std::min(k, c.size());
      std::vector<size_t> idx(size);
      for (size_t i = 0; i < size; ++i) idx[i] = i;
      while (oracle) {
        BagCollection sub = *c.Subcollection(idx);
        if (!(*SolveGlobalConsistencyExact(sub)).has_value()) {
          oracle = false;
          oracle_failing = idx;
          break;
        }
        size_t i = size;
        bool advanced = false;
        while (i > 0) {
          --i;
          if (idx[i] != i + c.size() - size) {
            ++idx[i];
            for (size_t j = i + 1; j < size; ++j) idx[j] = idx[j - 1] + 1;
            advanced = true;
            break;
          }
        }
        if (!advanced) break;
      }
      std::optional<std::vector<size_t>> failing;
      bool verdict = *AreKWiseConsistent(c, k, &failing);
      EXPECT_EQ(verdict, oracle);
      EXPECT_EQ(failing, oracle_failing);
    }
  }
}

}  // namespace
}  // namespace bagc
