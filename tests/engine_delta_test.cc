// Delta-vs-reseal differential harness (the correctness obligation of the
// streaming-mutation path): on 200 generated collections × randomized
// INSERT/DELETE streams, an engine maintained incrementally through
// ConsistencyEngine::ApplyDelta / MakeDelta must stay *bit-identical* to
// (a) a from-scratch full seal of the mutated collection and (b) the
// string-keyed std::map oracle that recomputes every marginal from the
// external tokens. Covers:
//
//   - pairwise / two-bag / global verdicts and the lexicographically
//     first failing pair after every commit;
//   - witness multiplicities: every two-bag witness of the delta engine
//     equals the reseal engine's, bag for bag;
//   - dirty-pair minimality: a delta to bag R never invalidates a pair
//     not involving R, and a projection under which the nets cancel
//     keeps its pairs clean;
//   - delta commutativity where it must hold: insert x then delete x in
//     one stream is a structural no-op (modulo the generation handle);
//   - marginal_fills() exactness: a MakeDelta generation fills exactly
//     its dirty slots — reuse-adopted slots are never counted;
//   - worker invariance: the delta engine agrees with from-scratch seals
//     at 1, 2, and 8 workers.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/consistency_engine.h"
#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "util/random.h"

namespace bagc {
namespace {

// External token for (attribute, numeric value) — the oracle never
// interns anything; only string equality structure survives.
std::string Tok(AttrId a, Value v) {
  return "attr" + std::to_string(a) + "_val_" + std::to_string(v);
}

std::vector<std::string> TokensOf(const Schema& schema, const Tuple& t) {
  std::vector<std::string> out(schema.arity());
  for (size_t i = 0; i < schema.arity(); ++i) out[i] = Tok(schema.at(i), t.at(i));
  return out;
}

using StringBag = std::map<std::vector<std::string>, uint64_t>;

// The string-keyed oracle's marginal of Equation (2), recomputed from
// scratch on every call — no incremental state to share bugs with.
StringBag OracleMarginal(const Bag& bag, const Schema& z) {
  Projector proj = *Projector::Make(bag.schema(), z);
  StringBag out;
  for (const auto& [t, mult] : bag.entries()) {
    std::vector<std::string> row = TokensOf(bag.schema(), t);
    std::vector<std::string> projected(proj.arity());
    for (size_t i = 0; i < proj.arity(); ++i) projected[i] = row[proj.SourceIndex(i)];
    out[projected] += mult;
  }
  return out;
}

struct OracleVerdict {
  bool consistent = true;
  std::pair<size_t, size_t> first_failing{0, 0};
};

OracleVerdict OraclePairwise(const BagCollection& c) {
  for (size_t i = 0; i < c.size(); ++i) {
    for (size_t j = i + 1; j < c.size(); ++j) {
      Schema z = Schema::Intersect(c.bag(i).schema(), c.bag(j).schema());
      if (OracleMarginal(c.bag(i), z) != OracleMarginal(c.bag(j), z)) {
        return {false, {i, j}};
      }
    }
  }
  return {};
}

// Same workload shapes as the other differential harnesses: rotating
// hypergraph families, consistent by construction, perturbed half the
// time so both verdicts appear.
Result<BagCollection> MakeWorkload(uint64_t seed) {
  Rng rng(seed * 2654435761u + 17);
  BagGenOptions options;
  options.support_size = 2 + rng.Below(8);
  options.domain_size = 2 + rng.Below(3);
  options.max_multiplicity = 5;
  Hypergraph h = [&] {
    switch (seed % 4) {
      case 0:
        return *MakePath(2 + seed % 4);
      case 1:
        return *MakeStar(2 + seed % 4);
      case 2:
        return *MakeRandomAcyclic(3 + seed % 3, 3, &rng);
      default:
        return *MakeCycle(3);
    }
  }();
  BAGC_ASSIGN_OR_RETURN(BagCollection c,
                        MakeGloballyConsistentCollection(h, options, &rng));
  if (rng.Chance(1, 2)) {
    std::vector<Bag> bags = c.bags();
    Bag& victim = bags[rng.Below(bags.size())];
    if (victim.IsEmpty()) {
      std::vector<Value> zeros(victim.schema().arity(), 0);
      EXPECT_TRUE(victim.Set(Tuple{zeros}, 1).ok());
    } else {
      size_t pick = rng.Below(victim.SupportSize());
      Tuple t = victim.entries()[pick].first;
      EXPECT_TRUE(victim.Set(t, victim.entries()[pick].second + 1).ok());
    }
    return BagCollection::Make(std::move(bags));
  }
  return c;
}

// A randomized INSERT/DELETE stream against `bag`: multiplicity bumps of
// known rows, deletes (including deletes to zero, which remove the row),
// brand-new rows, and the occasional insert+delete of the same row that
// must cancel before validation. Tracks the pending net per row so the
// stream is always valid — deletes never net below the current
// multiplicity (the invalid case has its own dedicated test).
std::vector<BagDelta> MakeStream(const Bag& bag, Rng* rng) {
  std::vector<BagDelta> deltas;
  std::map<Tuple, int64_t> net;
  auto available = [&](const Tuple& t) {
    return static_cast<int64_t>(bag.Multiplicity(t)) + net[t];
  };
  size_t n = 1 + rng->Below(4);
  for (size_t d = 0; d < n; ++d) {
    switch (rng->Below(4)) {
      case 0: {  // new (or existing) random row: insert
        std::vector<Value> vals(bag.schema().arity());
        for (Value& v : vals) v = rng->Below(5);
        int64_t amount = static_cast<int64_t>(1 + rng->Below(3));
        Tuple t{vals};
        net[t] += amount;
        deltas.push_back({std::move(t), amount});
        break;
      }
      case 1: {  // known row: bump
        if (bag.IsEmpty()) break;
        const Tuple& t = bag.entries()[rng->Below(bag.SupportSize())].first;
        int64_t amount = static_cast<int64_t>(1 + rng->Below(3));
        net[t] += amount;
        deltas.push_back({t, amount});
        break;
      }
      case 2: {  // known row: delete up to what the stream leaves of it
        if (bag.IsEmpty()) break;
        const Tuple& t = bag.entries()[rng->Below(bag.SupportSize())].first;
        int64_t left = available(t);
        if (left <= 0) break;
        int64_t drop =
            1 + static_cast<int64_t>(rng->Below(static_cast<uint64_t>(left)));
        net[t] -= drop;
        deltas.push_back({t, -drop});
        break;
      }
      default: {  // opposed pair on one (possibly absent) row: cancels
        std::vector<Value> vals(bag.schema().arity());
        for (Value& v : vals) v = rng->Below(5);
        int64_t amount = static_cast<int64_t>(1 + rng->Below(3));
        deltas.push_back({Tuple{vals}, amount});
        deltas.push_back({Tuple{vals}, -amount});
        break;
      }
    }
  }
  return deltas;
}

// Every pair the outcome reports dirty must involve the mutated bag.
void CheckDirtyPairMinimality(const DeltaOutcome& outcome, size_t mutated) {
  for (const auto& [i, j] : outcome.dirty_pairs) {
    EXPECT_TRUE(i == mutated || j == mutated)
        << "delta to bag " << mutated << " invalidated pair (" << i << ","
        << j << ")";
  }
}

// The full bit-identity check: delta-maintained engine vs a from-scratch
// seal of the same (mutated) collection vs the string oracle.
void CheckAgainstReseal(ConsistencyEngine& delta_engine) {
  BagCollection mutated(delta_engine.collection());
  ConsistencyEngine reseal = *ConsistencyEngine::Make(mutated);

  OracleVerdict oracle = OraclePairwise(mutated);
  PairwiseVerdict dv = *delta_engine.PairwiseAll();
  PairwiseVerdict rv = *reseal.PairwiseAll();
  EXPECT_EQ(dv.consistent, oracle.consistent);
  EXPECT_EQ(rv.consistent, oracle.consistent);
  if (!oracle.consistent) {
    EXPECT_EQ(dv.witness_pair, oracle.first_failing);
    EXPECT_EQ(rv.witness_pair, oracle.first_failing);
  }

  for (size_t i = 0; i < mutated.size(); ++i) {
    for (size_t j = i + 1; j < mutated.size(); ++j) {
      Schema z = Schema::Intersect(mutated.bag(i).schema(),
                                   mutated.bag(j).schema());
      bool pair_oracle =
          OracleMarginal(mutated.bag(i), z) == OracleMarginal(mutated.bag(j), z);
      EXPECT_EQ(*delta_engine.TwoBag(i, j), pair_oracle);
      EXPECT_EQ(*reseal.TwoBag(i, j), pair_oracle);

      // Witness multiplicities: the delta engine's witness is the reseal
      // engine's witness, multiplicity for multiplicity.
      std::optional<Bag> dw = *delta_engine.Witness(i, j);
      std::optional<Bag> rw = *reseal.Witness(i, j);
      ASSERT_EQ(dw.has_value(), rw.has_value());
      if (dw.has_value()) EXPECT_EQ(*dw, *rw);
    }
  }

  EXPECT_EQ(*delta_engine.Global(), *reseal.Global());
}

TEST(EngineDeltaTest, MatchesResealAndOracleOn200Collections) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(5'000'000 + seed);
    BagCollection start = *MakeWorkload(seed);
    ConsistencyEngine engine = *ConsistencyEngine::Make(start);

    size_t commits = 1 + rng.Below(3);
    for (size_t c = 0; c < commits; ++c) {
      size_t r = rng.Below(engine.collection().size());
      std::vector<BagDelta> deltas = MakeStream(engine.collection().bag(r), &rng);
      Result<DeltaOutcome> applied = engine.ApplyDelta(r, deltas);
      ASSERT_TRUE(applied.ok()) << applied.status().message();
      CheckDirtyPairMinimality(*applied, r);
      CheckAgainstReseal(engine);
    }
  }
}

TEST(EngineDeltaTest, MakeDeltaGenerationsMatchResealOn200Collections) {
  // The generation-chain variant the server uses: every commit derives a
  // NEW engine via MakeDelta (identity reuse of the previous generation)
  // while the previous one stays live and untouched.
  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(6'000'000 + seed);
    BagCollection start = *MakeWorkload(seed);
    std::vector<ConsistencyEngine> chain;
    chain.reserve(5);  // references into the chain survive every push_back
    chain.push_back(*ConsistencyEngine::Make(start));

    size_t commits = 1 + rng.Below(3);
    for (size_t c = 0; c < commits; ++c) {
      ConsistencyEngine& prev = chain.back();
      size_t r = rng.Below(prev.collection().size());
      std::vector<BagDelta> deltas = MakeStream(prev.collection().bag(r), &rng);
      StringBag prev_rows =
          OracleMarginal(prev.collection().bag(r), prev.collection().bag(r).schema());

      DeltaOutcome outcome;
      Result<ConsistencyEngine> derived =
          ConsistencyEngine::MakeDelta(prev, r, deltas, &outcome);
      ASSERT_TRUE(derived.ok()) << derived.status().message();
      chain.push_back(*std::move(derived));
      ConsistencyEngine& next = chain.back();

      CheckDirtyPairMinimality(outcome, r);
      // The delta generation fills exactly its dirty slots — adopted
      // slots (every other bag, and the mutated bag's clean projections)
      // are never counted (the marginal_fills() exactness regression).
      EXPECT_EQ(next.marginal_fills(), outcome.changed_slots);
      EXPECT_TRUE(next.fully_sealed());
      // The previous generation is immutable: its bag kept its rows.
      EXPECT_EQ(OracleMarginal(prev.collection().bag(r),
                               prev.collection().bag(r).schema()),
                prev_rows);

      CheckAgainstReseal(next);
    }
  }
}

TEST(EngineDeltaTest, InsertThenDeleteIsNoOp) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    BagCollection start = *MakeWorkload(seed);
    ConsistencyEngine engine = *ConsistencyEngine::Make(start);
    uint64_t fills_before = engine.marginal_fills();
    PairwiseVerdict before = *engine.PairwiseAll();
    bool global_before = *engine.Global();

    const Bag& bag = engine.collection().bag(0);
    std::vector<Value> vals(bag.schema().arity(), 1);
    Tuple x{vals};
    std::vector<BagDelta> stream = {{x, +3}, {x, -3}};
    DeltaOutcome outcome = *engine.ApplyDelta(0, stream);

    // Structural no-op: no slot changed, no pair dirtied, no fill
    // counted, and the bag's rows are untouched.
    EXPECT_EQ(outcome.changed_slots, 0u);
    EXPECT_TRUE(outcome.dirty_pairs.empty());
    EXPECT_EQ(engine.marginal_fills(), fills_before);
    EXPECT_EQ(engine.collection().bag(0), start.bag(0));

    PairwiseVerdict after = *engine.PairwiseAll();
    EXPECT_EQ(after.consistent, before.consistent);
    if (!before.consistent) EXPECT_EQ(after.witness_pair, before.witness_pair);
    EXPECT_EQ(*engine.Global(), global_before);

    // MakeDelta of the same stream: a fresh generation, zero fills
    // (no-op generation modulo the generation handle itself).
    DeltaOutcome gen_outcome;
    ConsistencyEngine next =
        *ConsistencyEngine::MakeDelta(engine, 0, stream, &gen_outcome);
    EXPECT_EQ(gen_outcome.changed_slots, 0u);
    EXPECT_EQ(next.marginal_fills(), 0u);
    EXPECT_EQ(next.collection().bag(0), start.bag(0));
    PairwiseVerdict gen_verdict = *next.PairwiseAll();
    EXPECT_EQ(gen_verdict.consistent, before.consistent);
  }
}

TEST(EngineDeltaTest, IdenticalVerdictsAcrossWorkerCounts) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(7'000'000 + seed);
    BagCollection start = *MakeWorkload(seed);
    ConsistencyEngine engine = *ConsistencyEngine::Make(start);
    size_t r = rng.Below(engine.collection().size());
    std::vector<BagDelta> deltas = MakeStream(engine.collection().bag(r), &rng);
    ASSERT_TRUE(engine.ApplyDelta(r, deltas).ok());
    PairwiseVerdict delta_verdict = *engine.PairwiseAll();

    for (size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
      EngineOptions opts;
      opts.num_threads = workers;
      ConsistencyEngine reseal =
          *ConsistencyEngine::Make(BagCollection(engine.collection()), opts);
      PairwiseVerdict v = *reseal.PairwiseAll();
      EXPECT_EQ(v.consistent, delta_verdict.consistent) << workers << " workers";
      if (!v.consistent) EXPECT_EQ(v.witness_pair, delta_verdict.witness_pair);
      EXPECT_EQ(*reseal.Global(), *engine.Global()) << workers << " workers";
    }
  }
}

TEST(EngineDeltaTest, DeleteBelowZeroLeavesEngineIntact) {
  BagCollection start = *MakeWorkload(3);
  ConsistencyEngine engine = *ConsistencyEngine::Make(start);
  PairwiseVerdict before = *engine.PairwiseAll();
  uint64_t fills_before = engine.marginal_fills();

  const Bag& bag = engine.collection().bag(0);
  ASSERT_FALSE(bag.IsEmpty());
  Tuple victim = bag.entries()[0].first;
  uint64_t have = bag.entries()[0].second;
  std::vector<BagDelta> stream = {
      {victim, -static_cast<int64_t>(have) - 1}};  // one too many
  Result<DeltaOutcome> failed = engine.ApplyDelta(0, stream);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kOutOfRange);

  // Nothing moved: rows, fills, and verdicts are bit-identical.
  EXPECT_EQ(engine.collection().bag(0), start.bag(0));
  EXPECT_EQ(engine.marginal_fills(), fills_before);
  PairwiseVerdict after = *engine.PairwiseAll();
  EXPECT_EQ(after.consistent, before.consistent);

  // And the engine still takes a valid delta afterwards.
  std::vector<BagDelta> ok_stream = {{victim, -static_cast<int64_t>(have)}};
  DeltaOutcome outcome = *engine.ApplyDelta(0, ok_stream);
  EXPECT_EQ(engine.collection().bag(0).Multiplicity(victim), 0u);
  CheckDirtyPairMinimality(outcome, 0);
  CheckAgainstReseal(engine);
}

TEST(EngineDeltaTest, MakeDeltaGuardRails) {
  BagCollection start = *MakeWorkload(5);
  ConsistencyEngine engine = *ConsistencyEngine::Make(start);
  std::vector<BagDelta> noop;

  // Bag index out of range.
  EXPECT_FALSE(
      ConsistencyEngine::MakeDelta(engine, start.size() + 7, noop).ok());

  // A lazily sealed previous generation is refused (slots unfilled).
  EngineOptions lazy;
  lazy.lazy_seal = true;
  ConsistencyEngine unsealed = *ConsistencyEngine::Make(
      BagCollection(start), lazy);
  EXPECT_FALSE(ConsistencyEngine::MakeDelta(unsealed, 0, noop).ok());

  // A view engine cannot take in-place deltas.
  ConsistencyEngine view = *ConsistencyEngine::MakeView(start);
  EXPECT_FALSE(view.ApplyDelta(0, noop).ok());
}

// The engine half of the COMMIT contract: a multi-bag batch whose LAST
// entry is invalid must leave every earlier bag untouched even though
// their own deltas were individually fine, for both the in-place
// (ApplyDeltaBatch) and derive-a-generation (MakeDeltaBatch) twins; and
// a valid batch's marginal fills land on exactly its dirty slot count.
TEST(EngineDeltaTest, BatchFailureInLastBagLeavesEveryBagUntouched) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(9'000'000 + seed);
    BagCollection start = *MakeWorkload(seed);
    ConsistencyEngine engine = *ConsistencyEngine::Make(start);
    const size_t m = engine.collection().size();
    if (m < 2) continue;  // atomicity across bags needs at least two
    PairwiseVerdict before = *engine.PairwiseAll();
    uint64_t fills_before = engine.marginal_fills();

    size_t victim_bag = m;
    for (size_t r = 0; r < m; ++r) {
      if (!engine.collection().bag(r).IsEmpty()) {
        victim_bag = r;
        break;
      }
    }
    ASSERT_LT(victim_bag, m);
    DeltaBatch batch;
    for (size_t r = 0; r < m; ++r) {
      if (r == victim_bag) continue;
      batch.push_back({r, MakeStream(engine.collection().bag(r), &rng)});
    }
    const Bag& victim = engine.collection().bag(victim_bag);
    Tuple row = victim.entries()[0].first;
    uint64_t have = victim.entries()[0].second;
    batch.push_back(
        {victim_bag, {{row, -static_cast<int64_t>(have) - 1}}});  // underflow

    Result<DeltaOutcome> failed = engine.ApplyDeltaBatch(batch);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kOutOfRange);
    for (size_t r = 0; r < m; ++r) {
      EXPECT_EQ(engine.collection().bag(r), start.bag(r)) << "bag " << r;
    }
    EXPECT_EQ(engine.marginal_fills(), fills_before);
    PairwiseVerdict after = *engine.PairwiseAll();
    EXPECT_EQ(after.consistent, before.consistent);

    // The derive-a-generation twin refuses identically, building nothing.
    Result<ConsistencyEngine> derived =
        ConsistencyEngine::MakeDeltaBatch(engine, batch);
    ASSERT_FALSE(derived.ok());
    EXPECT_EQ(derived.status().code(), StatusCode::kOutOfRange);

    // Drop the poisoned tail: the remaining all-valid batch derives one
    // generation whose fills are exactly the batch's dirty slots.
    batch.pop_back();
    if (batch.empty()) continue;
    DeltaOutcome outcome;
    Result<ConsistencyEngine> next =
        ConsistencyEngine::MakeDeltaBatch(engine, batch, &outcome);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    EXPECT_EQ(next->marginal_fills(), outcome.changed_slots);
    CheckAgainstReseal(*next);
  }
}

}  // namespace
}  // namespace bagc
