// Tests for §3: two-bag consistency (Lemma 2), witness construction
// (Corollary 1), minimal witnesses (§5.3, Corollary 4, Theorem 5), and the
// paper's R_{n-1}/S_{n-1} family with exactly 2^{n-1} pairwise-incomparable
// witnesses.
#include <gtest/gtest.h>

#include "bag/relation.h"
#include "core/two_bag.h"
#include "generators/workloads.h"
#include "solver/integer_feasibility.h"
#include "solver/lp.h"
#include "util/random.h"

namespace bagc {
namespace {

// The §3 family: R_{n-1}(A,B) and S_{n-1}(B,C). Attributes A=0, B=1, C=2.
std::pair<Bag, Bag> PaperFamily(size_t n) {
  Bag r(Schema{{0, 1}});
  Bag s(Schema{{1, 2}});
  for (Value v = 2; v <= static_cast<Value>(n); ++v) {
    EXPECT_TRUE(r.Set(Tuple{{1, v}}, 1).ok());
    EXPECT_TRUE(r.Set(Tuple{{v, v}}, 1).ok());
    EXPECT_TRUE(s.Set(Tuple{{v, 1}}, 1).ok());
    EXPECT_TRUE(s.Set(Tuple{{v, v}}, 1).ok());
  }
  return {std::move(r), std::move(s)};
}

TEST(TwoBagTest, Lemma2DecisionOnSmallCases) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{1, 2}, 1}, {{2, 2}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{2, 1}, 1}, {{2, 2}, 1}});
  EXPECT_TRUE(*AreConsistent(r, s));
  Bag s_bad = *MakeBag(Schema{{1, 2}}, {{{2, 1}, 2}, {{2, 2}, 1}});
  EXPECT_FALSE(*AreConsistent(r, s_bad));
}

TEST(TwoBagTest, DisjointSchemasRequireEqualCardinality) {
  // X ∩ Y = ∅: the shared marginal is the total multiset cardinality.
  Bag r = *MakeBag(Schema{{0}}, {{{1}, 2}, {{2}, 3}});
  Bag s = *MakeBag(Schema{{1}}, {{{7}, 5}});
  EXPECT_TRUE(*AreConsistent(r, s));
  Bag s2 = *MakeBag(Schema{{1}}, {{{7}, 4}});
  EXPECT_FALSE(*AreConsistent(r, s2));
}

TEST(TwoBagTest, EmptyBagsAreConsistent) {
  Bag r(Schema{{0, 1}});
  Bag s(Schema{{1, 2}});
  EXPECT_TRUE(*AreConsistent(r, s));
  auto witness = *FindWitness(r, s);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->IsEmpty());
}

TEST(TwoBagTest, IdenticalSchemasConsistentIffEqual) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{1, 2}, 3}});
  Bag s = *MakeBag(Schema{{0, 1}}, {{{1, 2}, 3}});
  EXPECT_TRUE(*AreConsistent(r, s));
  Bag s2 = *MakeBag(Schema{{0, 1}}, {{{1, 2}, 4}});
  EXPECT_FALSE(*AreConsistent(r, s2));
}

TEST(TwoBagTest, FindWitnessProducesValidWitness) {
  Rng rng(101);
  BagGenOptions options;
  options.support_size = 20;
  options.domain_size = 4;
  for (int trial = 0; trial < 40; ++trial) {
    auto [r, s] = *MakeConsistentPair(Schema{{0, 1, 2}}, Schema{{2, 3}}, options,
                                      &rng);
    auto witness = *FindWitness(r, s);
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(*IsWitness(*witness, r, s));
  }
}

TEST(TwoBagTest, FindWitnessReturnsNulloptWhenInconsistent) {
  Rng rng(102);
  BagGenOptions options;
  options.support_size = 12;
  options.domain_size = 3;
  for (int trial = 0; trial < 20; ++trial) {
    auto [r, s] =
        *MakeInconsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    EXPECT_FALSE(*AreConsistent(r, s));
    auto witness = *FindWitness(r, s);
    EXPECT_FALSE(witness.has_value());
    auto minimal = *FindMinimalWitness(r, s);
    EXPECT_FALSE(minimal.has_value());
  }
}

TEST(TwoBagTest, WitnessSupportInsideJoinOfSupports) {
  // Lemma 1.
  Rng rng(103);
  BagGenOptions options;
  options.support_size = 16;
  options.domain_size = 3;
  for (int trial = 0; trial < 20; ++trial) {
    auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    auto witness = *FindWitness(r, s);
    ASSERT_TRUE(witness.has_value());
    Relation join =
        *Relation::Join(Relation::SupportOf(r), Relation::SupportOf(s));
    for (const auto& [t, mult] : witness->entries()) {
      (void)mult;
      EXPECT_TRUE(join.Contains(t));
    }
  }
}

TEST(TwoBagTest, IsWitnessRejectsWrongSchemaAndWrongMarginals) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{1, 2}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{2, 3}, 1}});
  Bag wrong_schema = *MakeBag(Schema{{0, 1}}, {{{1, 2}, 1}});
  EXPECT_FALSE(*IsWitness(wrong_schema, r, s));
  Bag wrong = *MakeBag(Schema{{0, 1, 2}}, {{{1, 2, 3}, 2}});
  EXPECT_FALSE(*IsWitness(wrong, r, s));
  Bag right = *MakeBag(Schema{{0, 1, 2}}, {{{1, 2, 3}, 1}});
  EXPECT_TRUE(*IsWitness(right, r, s));
}

// ---- The §3 example family ----

TEST(TwoBagTest, BagJoinDoesNotWitnessBagConsistency) {
  // R1 ⋈_b S1 has four tuples of multiplicity 1; its marginal on AB gives
  // (1,2) -> 2, not the required 1.
  auto [r, s] = PaperFamily(2);
  Bag join = *Bag::Join(r, s);
  EXPECT_EQ(join.SupportSize(), 4u);
  EXPECT_FALSE(*IsWitness(join, r, s));
  // Yet as *relations* the join of supports projects back onto the
  // supports (set-consistency holds).
  Relation jr = *Relation::Join(Relation::SupportOf(r), Relation::SupportOf(s));
  EXPECT_EQ(*jr.Project(r.schema()), Relation::SupportOf(r));
  EXPECT_EQ(*jr.Project(s.schema()), Relation::SupportOf(s));
}

class PaperFamilyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PaperFamilyTest, ExactlyTwoToTheNMinusOneWitnesses) {
  size_t n = GetParam();
  auto [r, s] = PaperFamily(n);
  ASSERT_TRUE(*AreConsistent(r, s));
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  auto solutions = *EnumerateIntegerSolutions(lp);
  EXPECT_EQ(solutions.size(), uint64_t{1} << (n - 1));
}

TEST_P(PaperFamilyTest, WitnessesArePairwiseIncomparable) {
  size_t n = GetParam();
  auto [r, s] = PaperFamily(n);
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  auto solutions = *EnumerateIntegerSolutions(lp);
  std::vector<Bag> witnesses;
  for (const auto& x : solutions) {
    Bag w(lp.joined_schema);
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i] > 0) {
        ASSERT_TRUE(w.Add(lp.variables[i], x[i]).ok());
      }
    }
    EXPECT_TRUE(*IsWitness(w, r, s));
    witnesses.push_back(std::move(w));
  }
  for (size_t i = 0; i < witnesses.size(); ++i) {
    for (size_t j = 0; j < witnesses.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Bag::Contained(witnesses[i], witnesses[j]));
    }
  }
}

TEST_P(PaperFamilyTest, WitnessSupportsProperlyInsideJoinSupport) {
  size_t n = GetParam();
  auto [r, s] = PaperFamily(n);
  Bag join = *Bag::Join(r, s);
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  auto solutions = *EnumerateIntegerSolutions(lp);
  for (const auto& x : solutions) {
    size_t support = 0;
    for (uint64_t v : x) support += (v > 0);
    EXPECT_LT(support, join.SupportSize());
  }
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, PaperFamilyTest,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10));

// ---- Minimal witnesses (§5.3) ----

TEST(MinimalWitnessTest, MinimalWitnessIsWitness) {
  Rng rng(104);
  BagGenOptions options;
  options.support_size = 12;
  options.domain_size = 3;
  for (int trial = 0; trial < 25; ++trial) {
    auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    auto minimal = *FindMinimalWitness(r, s);
    ASSERT_TRUE(minimal.has_value());
    EXPECT_TRUE(*IsWitness(*minimal, r, s));
  }
}

TEST(MinimalWitnessTest, TheoremFiveSupportBound) {
  // ||W||supp <= ||R||supp + ||S||supp for minimal witnesses.
  Rng rng(105);
  BagGenOptions options;
  options.support_size = 18;
  options.domain_size = 4;
  options.max_multiplicity = 50;
  for (int trial = 0; trial < 25; ++trial) {
    auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    auto minimal = *FindMinimalWitness(r, s);
    ASSERT_TRUE(minimal.has_value());
    EXPECT_LE(minimal->SupportSize(), r.SupportSize() + s.SupportSize());
    // Theorem 3(1): multiplicities bounded by the inputs'.
    EXPECT_LE(minimal->MultiplicityBound(),
              std::max(r.MultiplicityBound(), s.MultiplicityBound()));
  }
}

TEST(MinimalWitnessTest, MinimalityIsGenuine) {
  // No witness's support is strictly contained in the minimal witness's:
  // verify by exhaustive enumeration on small instances.
  Rng rng(106);
  BagGenOptions options;
  options.support_size = 6;
  options.domain_size = 3;
  for (int trial = 0; trial < 15; ++trial) {
    auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    auto minimal = *FindMinimalWitness(r, s);
    ASSERT_TRUE(minimal.has_value());
    ConsistencyLp lp = *BuildConsistencyLp({r, s});
    auto solutions = *EnumerateIntegerSolutions(lp);
    ASSERT_FALSE(solutions.empty());
    for (const auto& x : solutions) {
      // Support of x strictly inside support of minimal? Must not happen.
      bool subset = true;
      bool strict = false;
      for (size_t i = 0; i < x.size(); ++i) {
        bool in_x = x[i] > 0;
        bool in_min = minimal->Multiplicity(lp.variables[i]) > 0;
        if (in_x && !in_min) subset = false;
        if (!in_x && in_min) strict = true;
      }
      EXPECT_FALSE(subset && strict)
          << "found witness with support strictly inside the minimal witness";
    }
  }
}

TEST(MinimalWitnessTest, DiagonalPairHasSingletonStructure) {
  // R = {(v,v):1}, S = {(v,v):1} chains force a unique diagonal witness.
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}, {{1, 1}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}, {{1, 1}, 1}});
  auto minimal = *FindMinimalWitness(r, s);
  ASSERT_TRUE(minimal.has_value());
  EXPECT_EQ(minimal->SupportSize(), 2u);
  EXPECT_EQ(minimal->Multiplicity(Tuple{{0, 0, 0}}), 1u);
  EXPECT_EQ(minimal->Multiplicity(Tuple{{1, 1, 1}}), 1u);
}

}  // namespace
}  // namespace bagc
