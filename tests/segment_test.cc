// Differential suite for the sealed-bag segment format (tuple/segment.h):
// a corrupted or truncated file must fail cleanly — InvalidArgument
// (E_PARSE) for structural damage, OutOfRange (E_RANGE) for offsets
// escaping the file — with no crash under ASan/UBSan, and an intact
// segment must round-trip the collection bit-identically against the
// parsed-text reference. CI reruns this label in the sanitizer leg
// (`ctest -L differential`).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bag/bag_io.h"
#include "server/engine_snapshot.h"
#include "server/session.h"
#include "tuple/column_store.h"
#include "tuple/segment.h"
#include "tuple/value_dictionary.h"

namespace bagc {
namespace {

// The reference collection: two bags sharing attribute b, string-valued
// so every attribute carries a real dictionary.
constexpr const char* kCollectionText =
    "bag a b\n"
    "x u : 2\n"
    "y u : 1\n"
    "y v : 7\n"
    "end\n"
    "bag b c\n"
    "u p : 3\n"
    "v q : 4\n"
    "end\n";

struct Fixture {
  AttributeCatalog catalog;
  DictionarySet dicts;
  std::vector<Bag> bags;
  std::vector<std::string> names;
  std::string segment;  // valid encoded bytes
};

Fixture MakeFixture() {
  Fixture f;
  f.bags = *ParseCollection(kCollectionText, &f.catalog, &f.dicts);
  f.names = {"left", "right"};
  f.segment = *EncodeSegment(f.names, f.bags, f.catalog, f.dicts);
  return f;
}

// The same FNV-1a the format specifies for bytes [64, size) — tests that
// corrupt the body must restamp the checksum so the *targeted* check
// (not the checksum) rejects the file.
uint64_t Fnv1a(const char* data, size_t n) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void PutU64(std::string* bytes, size_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*bytes)[at + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

uint64_t GetU64(const std::string& bytes, size_t at) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= uint64_t{static_cast<unsigned char>(bytes[at + i])} << (8 * i);
  }
  return v;
}

void Restamp(std::string* bytes) {
  PutU64(bytes, 24,
         Fnv1a(bytes->data() + kSegmentHeaderBytes,
               bytes->size() - kSegmentHeaderBytes));
}

TEST(SegmentTest, TruncatedFileIsRejectedCleanly) {
  Fixture f = MakeFixture();
  // Every truncation point — inside the header, the tables, the heap —
  // must fail without touching a byte past the buffer.
  for (size_t keep : {size_t{0}, size_t{7}, size_t{63}, size_t{64},
                      f.segment.size() / 2, f.segment.size() - 1}) {
    std::string cut = f.segment.substr(0, keep);
    Result<SegmentReader> r = SegmentReader::Parse(cut);
    ASSERT_FALSE(r.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << r.status().ToString();
  }
}

TEST(SegmentTest, BadMagicIsRejected) {
  Fixture f = MakeFixture();
  std::string bytes = f.segment;
  bytes[0] = 'X';
  Result<SegmentReader> r = SegmentReader::Parse(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
}

TEST(SegmentTest, WrongVersionIsRejected) {
  Fixture f = MakeFixture();
  std::string bytes = f.segment;
  bytes[8] = 99;  // u32 version LE, low byte
  Result<SegmentReader> r = SegmentReader::Parse(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST(SegmentTest, ChecksumMismatchIsRejected) {
  Fixture f = MakeFixture();
  std::string bytes = f.segment;
  bytes[bytes.size() - 1] ^= 0x01;  // flip one heap bit, keep the header
  Result<SegmentReader> r = SegmentReader::Parse(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST(SegmentTest, ColumnOffsetOutsideFileIsRejected) {
  Fixture f = MakeFixture();
  std::string bytes = f.segment;
  // Bag entry 0's columns offset lives at bag_table + 24 (layout in
  // tuple/segment.h). Point it past EOF, restamp the checksum so the
  // bounds check — not the checksum — must catch it.
  uint64_t bag_table = GetU64(bytes, 48);
  PutU64(&bytes, bag_table + 24, bytes.size() + 4096);
  Restamp(&bytes);
  Result<SegmentReader> r = SegmentReader::Parse(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange)
      << r.status().ToString();
}

TEST(SegmentTest, TableOffsetsOutsideFileAreRejected) {
  Fixture f = MakeFixture();
  for (size_t field : {size_t{40}, size_t{48}}) {  // attr table, bag table
    std::string bytes = f.segment;
    PutU64(&bytes, field, bytes.size());
    Restamp(&bytes);
    Result<SegmentReader> r = SegmentReader::Parse(bytes);
    ASSERT_FALSE(r.ok()) << "field at " << field;
    EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange)
        << r.status().ToString();
  }
}

TEST(SegmentTest, HeaderFileSizeMustMatch) {
  Fixture f = MakeFixture();
  std::string bytes = f.segment;
  PutU64(&bytes, 16, bytes.size() + 1);
  Result<SegmentReader> r = SegmentReader::Parse(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// The zero-parse ingest must reproduce the parsed-text collection
// bit-identically: same schemas, same tuples, same multiplicities, same
// decoded serialization.
TEST(SegmentTest, MappedSegmentRoundTripsBitIdentically) {
  Fixture f = MakeFixture();
  std::string path = testing::TempDir() + "segment_roundtrip.seg";
  ASSERT_TRUE(
      WriteSegmentFile(path, f.names, f.bags, f.catalog, f.dicts).ok());
  Result<SegmentReader> reader = SegmentReader::Map(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  // Rebuild the dictionaries from the segment's externals; they must
  // reproduce the writer's id spaces exactly.
  AttributeCatalog catalog;
  DictionarySet dicts;
  ASSERT_EQ(reader->num_attrs(), 3u);
  for (size_t a = 0; a < reader->num_attrs(); ++a) {
    AttrId id = catalog.Intern(std::string(reader->attr_name(a)));
    ASSERT_TRUE(dicts.dict(id).BulkLoad(reader->AttrValues(a)).ok());
  }

  ASSERT_EQ(reader->num_bags(), f.bags.size());
  for (size_t b = 0; b < reader->num_bags(); ++b) {
    EXPECT_EQ(reader->bag_name(b), f.names[b]);
    std::vector<std::string> col_names;
    for (size_t c = 0; c < reader->bag_arity(b); ++c) {
      col_names.emplace_back(reader->attr_name(reader->bag_attr(b, c)));
    }
    ColumnStore columns = reader->Columns(b);
    Result<Bag> rebuilt = BagFromU32Columns(col_names, columns.View(),
                                            reader->Mults(b), &catalog, dicts);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    // Bit-identical: schema, tuple ids, multiplicities...
    EXPECT_TRUE(*rebuilt == f.bags[b]) << "bag " << b;
    // ...and the decoded text form (ids resolved through the rebuilt
    // dictionaries) matches the original parse's byte-for-byte.
    EXPECT_EQ(WriteBag(*rebuilt, catalog, &dicts),
              WriteBag(f.bags[b], f.catalog, &f.dicts));
  }
  std::remove(path.c_str());
}

// LOADSEG through a live session must produce the same sealed snapshot
// a text-loaded session produces: identical STATS support/dict counts
// and identical decoded witness bodies.
TEST(SegmentTest, LoadSegMatchesTextLoadedSession) {
  Fixture f = MakeFixture();
  std::string path = testing::TempDir() + "segment_session.seg";
  ASSERT_TRUE(
      WriteSegmentFile(path, f.names, f.bags, f.catalog, f.dicts).ok());

  CollectionRegistry text_registry;
  ServerSession text_session(&text_registry, nullptr);
  std::string dict_script;
  for (AttrId a : {0, 1, 2}) {
    const ValueDictionary* dict = f.dicts.find_dict(a);
    ASSERT_NE(dict, nullptr);
    dict_script += "DICT " + f.catalog.Name(a) + " " +
                   std::to_string(dict->size()) + "\n";
    for (const std::string& value : dict->externals()) dict_script += value + "\n";
    dict_script += "END\n";
  }
  std::string load_script = dict_script;
  for (size_t b = 0; b < f.bags.size(); ++b) {
    load_script += "LOADU32 " + f.names[b];
    for (AttrId a : f.bags[b].schema().attrs()) {
      load_script += " " + f.catalog.Name(a);
    }
    load_script += "\n";
    for (const auto& [t, mult] : f.bags[b].entries()) {
      for (size_t i = 0; i < t.arity(); ++i) {
        load_script += std::to_string(t.id(i)) + " ";
      }
      load_script += ": " + std::to_string(mult) + "\n";
    }
    load_script += "END\n";
  }
  const std::string queries = "SEAL\nTWOBAG 0 1\nWITNESS left right\nSTATS\n";
  std::vector<std::string> text_out = text_session.HandleScript(load_script + queries);

  CollectionRegistry seg_registry;
  ServerSession seg_session(&seg_registry, nullptr);
  std::vector<std::string> seg_out =
      seg_session.HandleScript("LOADSEG " + path + "\n" + queries);

  for (const std::string& line : text_out) {
    ASSERT_EQ(line.rfind("ERR", 0), std::string::npos) << line;
  }
  for (const std::string& line : seg_out) {
    ASSERT_EQ(line.rfind("ERR", 0), std::string::npos) << line;
  }
  // Compare from SEAL onward (the load-phase responses legitimately
  // differ: N DICT/LOADU32 acks vs one LOADSEG ack).
  auto tail = [](const std::vector<std::string>& lines) {
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].rfind("OK SEAL", 0) == 0) {
        return std::vector<std::string>(lines.begin() + i, lines.end());
      }
    }
    return std::vector<std::string>();
  };
  std::vector<std::string> text_tail = tail(text_out);
  std::vector<std::string> seg_tail = tail(seg_out);
  ASSERT_FALSE(text_tail.empty());
  // sealed_bytes is the one line that legitimately differs: the
  // segment-loaded session serves the mmap'd columns in place
  // (BagBorrowU32Columns), so its engine-resident bytes must come in at
  // or under the text-loaded copy. Everything else is byte-identical.
  auto split_sealed = [](std::vector<std::string>* lines) {
    for (auto it = lines->begin(); it != lines->end(); ++it) {
      if (it->rfind("sealed_bytes ", 0) == 0) {
        uint64_t value = std::stoull(it->substr(std::string("sealed_bytes ").size()));
        lines->erase(it);
        return value;
      }
    }
    return static_cast<uint64_t>(0);
  };
  uint64_t text_sealed = split_sealed(&text_tail);
  uint64_t seg_sealed = split_sealed(&seg_tail);
  EXPECT_GT(text_sealed, 0u);
  EXPECT_GT(seg_sealed, 0u);
  EXPECT_LE(seg_sealed, text_sealed);
  EXPECT_EQ(text_tail, seg_tail);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bagc
