// Cross-module integration and property tests:
//  - Theorem 2 end-to-end: over random hypergraphs, acyclicity coincides
//    with the local-to-global consistency property (sampled semantically).
//  - Theorem 4 dichotomy machinery: the acyclic algorithm, the exact
//    solver, and the pairwise test agree wherever both are defined.
//  - Bags vs. relations: supports of consistent bags are consistent
//    relations, but not conversely.
#include <gtest/gtest.h>

#include "bag/relation.h"
#include "core/global.h"
#include "core/local_global.h"
#include "core/pairwise.h"
#include "core/two_bag.h"
#include "generators/workloads.h"
#include "hypergraph/acyclicity.h"
#include "hypergraph/families.h"
#include "setcase/relation_consistency.h"
#include "util/random.h"

namespace bagc {
namespace {

TEST(TheoremTwoIntegrationTest, AcyclicIffLocalToGlobal) {
  // For each random hypergraph: if acyclic, every sampled pairwise
  // consistent collection (here: marginalized hidden witnesses plus the
  // Theorem-6 fold of random pairwise-consistent bags) is globally
  // consistent; if cyclic, MakeCounterexample refutes local-to-global.
  Rng rng(201);
  BagGenOptions options;
  options.support_size = 10;
  options.domain_size = 2;
  options.max_multiplicity = 3;
  int acyclic_seen = 0, cyclic_seen = 0;
  for (int trial = 0; trial < 60 && (acyclic_seen < 10 || cyclic_seen < 10);
       ++trial) {
    size_t n = 4 + rng.Below(3);
    size_t k = 2 + rng.Below(2);
    size_t m = 2 + rng.Below(4);
    auto maybe_h = MakeRandomUniform(n, k, m, &rng);
    if (!maybe_h.ok()) continue;
    const Hypergraph& h = *maybe_h;
    if (HasLocalToGlobalConsistencyForBags(h)) {
      ++acyclic_seen;
      EXPECT_TRUE(IsAcyclic(h));
      BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
      EXPECT_TRUE(*ArePairwiseConsistent(c));
      auto witness = *SolveGlobalConsistencyAcyclic(c);
      EXPECT_TRUE(witness.has_value());
    } else {
      ++cyclic_seen;
      EXPECT_FALSE(IsAcyclic(h));
      BagCollection c = *MakeCounterexample(h);
      EXPECT_TRUE(*ArePairwiseConsistent(c));
      EXPECT_FALSE(SolveGlobalConsistencyExact(c)->has_value());
    }
  }
  EXPECT_GE(acyclic_seen, 5);
  EXPECT_GE(cyclic_seen, 5);
}

TEST(DichotomyIntegrationTest, AcyclicAndExactSolversAgree) {
  Rng rng(202);
  BagGenOptions options;
  options.support_size = 6;
  options.domain_size = 2;
  options.max_multiplicity = 3;
  for (int trial = 0; trial < 20; ++trial) {
    Hypergraph h = *MakeRandomAcyclic(2 + rng.Below(3), 1 + rng.Below(3), &rng);
    // Half the trials: marginalized (consistent); half: independent random
    // bags (usually inconsistent).
    BagCollection c = (trial % 2 == 0)
        ? *MakeGloballyConsistentCollection(h, options, &rng)
        : [&] {
            std::vector<Bag> bags;
            for (const Schema& e : h.edges()) {
              bags.push_back(*MakeRandomBag(e, options, &rng));
            }
            return *BagCollection::Make(std::move(bags));
          }();
    auto fast = *SolveGlobalConsistencyAcyclic(c);
    auto exact = *SolveGlobalConsistencyExact(c);
    EXPECT_EQ(fast.has_value(), exact.has_value());
    EXPECT_EQ(*IsGloballyConsistent(c), fast.has_value());
    if (fast.has_value()) {
      EXPECT_TRUE(*c.IsWitness(*fast));
      EXPECT_TRUE(*c.IsWitness(*exact));
    }
  }
}

TEST(DichotomyIntegrationTest, PairwiseDecidesGlobalOnAcyclicOnly) {
  // On acyclic schemas pairwise == global; the triangle Tseitin collection
  // shows the equivalence genuinely fails on cyclic schemas.
  Rng rng(203);
  BagGenOptions options;
  options.support_size = 8;
  options.domain_size = 2;
  options.max_multiplicity = 3;
  for (int trial = 0; trial < 15; ++trial) {
    Hypergraph h = *MakeRandomAcyclic(2 + rng.Below(4), 1 + rng.Below(3), &rng);
    std::vector<Bag> bags;
    for (const Schema& e : h.edges()) {
      bags.push_back(*MakeRandomBag(e, options, &rng));
    }
    BagCollection c = *BagCollection::Make(std::move(bags));
    EXPECT_EQ(*ArePairwiseConsistent(c), *IsGloballyConsistent(c));
  }
}

TEST(BagVsRelationTest, BagConsistencyImpliesSupportConsistency) {
  Rng rng(204);
  BagGenOptions options;
  options.support_size = 14;
  options.domain_size = 3;
  for (int trial = 0; trial < 20; ++trial) {
    auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    ASSERT_TRUE(*AreConsistent(r, s));
    EXPECT_TRUE(
        *AreConsistentRelations(Relation::SupportOf(r), Relation::SupportOf(s)));
  }
}

TEST(BagVsRelationTest, SupportConsistencyDoesNotImplyBagConsistency) {
  // R = {(0,0):1, (1,0):2}, S = {(0,0):2, (0,1):1}: supports project to
  // the same set {0} on B, but the bag marginals are 3 vs 3 on B=0 — make
  // them differ.
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}, {{1, 0}, 2}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 2}, {{0, 1}, 2}});
  EXPECT_TRUE(*AreConsistentRelations(Relation::SupportOf(r),
                                      Relation::SupportOf(s)));
  EXPECT_FALSE(*AreConsistent(r, s));
}

TEST(BagVsRelationTest, FixedCyclicSchemaRelationsStayPolynomial) {
  // §5.1: for fixed schemas, relations decide global consistency via one
  // join — a single polynomial call even on the cyclic C4, where the bag
  // problem is NP-complete. The Tseitin supports chain parities around the
  // cycle, so the relation solver correctly reports inconsistency here too
  // (global bag consistency always implies support consistency, because
  // Supp(T)[Xi] = Supp(T[Xi])).
  Hypergraph c4 = *MakeCycle(4);
  BagCollection bags = *MakeCounterexample(c4);
  std::vector<Relation> rels;
  for (const Bag& b : bags.bags()) rels.push_back(Relation::SupportOf(b));
  // As bags: pairwise consistent but globally inconsistent.
  EXPECT_TRUE(*ArePairwiseConsistent(bags));
  EXPECT_FALSE(*IsGloballyConsistent(bags));
  // The polynomial relation-side decision agrees (and terminates fast).
  auto witness = *SolveGlobalConsistencyRelations(rels);
  EXPECT_FALSE(witness.has_value());
}

TEST(BagVsRelationTest, GlobalBagConsistencyImpliesSupportConsistency) {
  // Supp(T)[Xi] = Supp(T[Xi]): if T witnesses the bags, Supp(T) witnesses
  // the supports.
  Rng rng(207);
  BagGenOptions options;
  options.support_size = 10;
  options.domain_size = 2;
  for (int trial = 0; trial < 15; ++trial) {
    Hypergraph h = *MakeCycle(3);
    BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
    std::vector<Relation> rels;
    for (const Bag& b : c.bags()) rels.push_back(Relation::SupportOf(b));
    auto witness = *SolveGlobalConsistencyRelations(rels);
    EXPECT_TRUE(witness.has_value());
  }
}

TEST(WitnessPipelineTest, MinimalWitnessOfAcyclicSolveStaysValid) {
  Rng rng(205);
  BagGenOptions options;
  options.support_size = 5;
  options.domain_size = 2;
  options.max_multiplicity = 6;
  for (int trial = 0; trial < 8; ++trial) {
    Hypergraph h = *MakePath(3);
    BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
    auto witness = *SolveGlobalConsistencyAcyclic(c);
    ASSERT_TRUE(witness.has_value());
    Bag minimal = *MinimizeWitnessSupport(c, *witness);
    EXPECT_TRUE(*c.IsWitness(minimal));
    EXPECT_LE(minimal.SupportSize(), witness->SupportSize());
    uint64_t bound = 0;
    for (const Bag& b : c.bags()) bound += b.BinarySize();
    EXPECT_LE(minimal.SupportSize(), bound);
  }
}

TEST(NpCertificateTest, WitnessVerificationIsSound) {
  // Corollary 3's certificate check: tamper with any single multiplicity
  // and verification must fail.
  Rng rng(206);
  BagGenOptions options;
  options.support_size = 8;
  options.domain_size = 2;
  Hypergraph h = *MakeCycle(3);
  BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
  auto witness = *SolveGlobalConsistencyExact(c);
  ASSERT_TRUE(witness.has_value());
  ASSERT_TRUE(*c.IsWitness(*witness));
  Bag tampered = *witness;
  ASSERT_FALSE(tampered.IsEmpty());
  auto it = tampered.entries().begin();
  Tuple t = it->first;
  uint64_t m = it->second;
  ASSERT_TRUE(tampered.Set(t, m + 1).ok());
  EXPECT_FALSE(*c.IsWitness(tampered));
}

}  // namespace
}  // namespace bagc
