// Tests for §5.2's reductions: 3DCT <=> GCPB(C3) (Lemma 6 base case), the
// cycle chain C_n -> C_{n+1} (Lemma 6), and the Hn chain (Lemma 7),
// including both witness-mapping directions.
#include <gtest/gtest.h>

#include "core/global.h"
#include "generators/workloads.h"
#include "core/pairwise.h"
#include "core/tseitin.h"
#include "hypergraph/families.h"
#include "reductions/cycle_chain.h"
#include "reductions/hn_chain.h"
#include "reductions/threedct.h"
#include "util/random.h"

namespace bagc {
namespace {

TEST(ThreeDctTest, FeasibleInstanceConvertsToConsistentBags) {
  Rng rng(81);
  for (int trial = 0; trial < 10; ++trial) {
    ThreeDctInstance inst = MakeFeasibleInstance(3, 4, &rng);
    BagCollection c = *ToTriangleBags(inst);
    EXPECT_EQ(c.size(), 3u);
    auto witness = *SolveGlobalConsistencyExact(c);
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(*c.IsWitness(*witness));
    // Convert witness back into a table and verify line sums.
    std::vector<uint64_t> table(inst.n * inst.n * inst.n, 0);
    for (const auto& [t, mult] : witness->entries()) {
      size_t i = static_cast<size_t>(t.at(0));
      size_t j = static_cast<size_t>(t.at(1));
      size_t k = static_cast<size_t>(t.at(2));
      table[(i * inst.n + j) * inst.n + k] = mult;
    }
    EXPECT_TRUE(VerifyTable(inst, table));
  }
}

TEST(ThreeDctTest, PerturbationBreaksConsistency) {
  Rng rng(82);
  int broken = 0;
  for (int trial = 0; trial < 10; ++trial) {
    ThreeDctInstance inst = MakeFeasibleInstance(2, 3, &rng);
    ThreeDctInstance bad = PerturbInstance(inst, 1, &rng);
    BagCollection c = *ToTriangleBags(bad);
    auto witness = *SolveGlobalConsistencyExact(c);
    if (!witness.has_value()) ++broken;
  }
  // A +1 perturbation desynchronizes the grand totals: always infeasible.
  EXPECT_EQ(broken, 10);
}

TEST(ThreeDctTest, VerifyTableRejectsWrongShapes) {
  Rng rng(83);
  ThreeDctInstance inst = MakeFeasibleInstance(2, 2, &rng);
  EXPECT_FALSE(VerifyTable(inst, std::vector<uint64_t>(3, 0)));
  std::vector<uint64_t> zeros(8, 0);
  // All-zero table only works when all margins are zero.
  bool all_zero = true;
  for (uint64_t v : inst.row_sums) all_zero &= (v == 0);
  EXPECT_EQ(VerifyTable(inst, zeros), all_zero);
  EXPECT_FALSE(ToTriangleBags(ThreeDctInstance{}).ok());
}

TEST(ThreeDctTest, TriangleSchemaIsC3) {
  Rng rng(84);
  ThreeDctInstance inst = MakeFeasibleInstance(2, 2, &rng);
  BagCollection c = *ToTriangleBags(inst);
  EXPECT_EQ(c.hypergraph(), *MakeCycle(3));
}

// ---- Cycle chain (Lemma 6) ----

CycleInstance TseitinCycleInstance(size_t n) {
  // The Tseitin bags over Cn are exactly a (pairwise consistent, globally
  // inconsistent) cycle instance.
  std::vector<Bag> bags = *MakeTseitinCollection(*MakeCycle(n));
  // MakeTseitinCollection returns bags in canonical (sorted) edge order;
  // rearrange into cycle-edge order {i, i+1}.
  std::vector<Bag> ordered(n, Bag{});
  for (Bag& b : bags) {
    for (size_t i = 0; i < n; ++i) {
      Schema want{{static_cast<AttrId>(i), static_cast<AttrId>((i + 1) % n)}};
      if (b.schema() == want) ordered[i] = std::move(b);
    }
  }
  return *MakeCycleInstance(std::move(ordered));
}

CycleInstance ConsistentCycleInstance(size_t n, Rng* rng) {
  // Marginals of a hidden witness over A1..An.
  std::vector<AttrId> attrs(n);
  for (size_t i = 0; i < n; ++i) attrs[i] = static_cast<AttrId>(i);
  BagGenOptions options;
  options.support_size = 8;
  options.domain_size = 2;
  options.max_multiplicity = 3;
  Bag hidden = *MakeRandomBag(Schema{attrs}, options, rng);
  if (hidden.IsEmpty()) {
    EXPECT_TRUE(hidden.Set(Tuple{std::vector<Value>(n, 0)}, 1).ok());
  }
  std::vector<Bag> bags;
  for (size_t i = 0; i < n; ++i) {
    Schema e{{static_cast<AttrId>(i), static_cast<AttrId>((i + 1) % n)}};
    bags.push_back(*hidden.Marginal(e));
  }
  return *MakeCycleInstance(std::move(bags));
}

TEST(CycleChainTest, ValidatesSchemas) {
  EXPECT_FALSE(MakeCycleInstance({}).ok());
  Bag b0(Schema{{0, 1}});
  Bag b1(Schema{{1, 2}});
  Bag closing(Schema{{0, 2}});  // the C3 closing edge {A3, A1}
  EXPECT_TRUE(MakeCycleInstance({b0, b1, closing}).ok());
  Bag wrong(Schema{{1, 2}});
  EXPECT_FALSE(MakeCycleInstance({b0, b1, wrong}).ok());
}

TEST(CycleChainTest, ExtensionPreservesConsistencyStatus) {
  Rng rng(85);
  // Consistent side.
  for (int trial = 0; trial < 5; ++trial) {
    CycleInstance in = ConsistentCycleInstance(3, &rng);
    CycleInstance out = *ExtendCycle(in);
    EXPECT_EQ(out.n, 4u);
    BagCollection cin = *ToCollection(in);
    BagCollection cout = *ToCollection(out);
    EXPECT_TRUE(SolveGlobalConsistencyExact(cin)->has_value());
    EXPECT_TRUE(SolveGlobalConsistencyExact(cout)->has_value());
  }
  // Inconsistent side (Tseitin).
  CycleInstance bad = TseitinCycleInstance(3);
  CycleInstance bad4 = *ExtendCycle(bad);
  EXPECT_FALSE(SolveGlobalConsistencyExact(*ToCollection(bad4))->has_value());
  // The extension is even pairwise consistent (the reduction preserves
  // the local structure).
  EXPECT_TRUE(*ArePairwiseConsistent(*ToCollection(bad4)));
}

TEST(CycleChainTest, WitnessMapsBothWays) {
  Rng rng(86);
  CycleInstance in = ConsistentCycleInstance(3, &rng);
  CycleInstance out = *ExtendCycle(in);
  BagCollection cin = *ToCollection(in);
  BagCollection cout = *ToCollection(out);
  auto w_in = *SolveGlobalConsistencyExact(cin);
  ASSERT_TRUE(w_in.has_value());
  // Forward: extend the witness.
  Bag w_out = *ExtendCycleWitness(in, *w_in);
  EXPECT_TRUE(*cout.IsWitness(w_out));
  // Backward: restrict a witness of the extension.
  Bag w_back = *RestrictCycleWitness(in, w_out);
  EXPECT_TRUE(*cin.IsWitness(w_back));
}

TEST(CycleChainTest, IteratedExtensionReachesLargerCycles) {
  CycleInstance cur = TseitinCycleInstance(3);
  for (size_t n = 3; n < 6; ++n) {
    cur = *ExtendCycle(cur);
    EXPECT_EQ(cur.n, n + 1);
    BagCollection c = *ToCollection(cur);
    EXPECT_TRUE(*ArePairwiseConsistent(c));
    EXPECT_FALSE(SolveGlobalConsistencyExact(c)->has_value());
  }
}

// ---- Hn chain (Lemma 7) ----

HnInstance TseitinHnInstance(size_t n) {
  std::vector<Bag> bags = *MakeTseitinCollection(*MakeHn(n));
  // Canonical edge order of Hn: sorted lexicographically. Rearrange so
  // bags[i] misses attribute i.
  std::vector<Bag> ordered(n, Bag{});
  for (Bag& b : bags) {
    for (size_t i = 0; i < n; ++i) {
      if (!b.schema().Contains(static_cast<AttrId>(i))) {
        ordered[i] = std::move(b);
        break;
      }
    }
  }
  return *MakeHnInstance(std::move(ordered));
}

HnInstance ConsistentHnInstance(size_t n, Rng* rng) {
  std::vector<AttrId> attrs(n);
  for (size_t i = 0; i < n; ++i) attrs[i] = static_cast<AttrId>(i);
  BagGenOptions options;
  options.support_size = 6;
  options.domain_size = 2;
  options.max_multiplicity = 3;
  Bag hidden = *MakeRandomBag(Schema{attrs}, options, rng);
  if (hidden.IsEmpty()) {
    EXPECT_TRUE(hidden.Set(Tuple{std::vector<Value>(n, 0)}, 1).ok());
  }
  std::vector<Bag> bags;
  for (size_t i = 0; i < n; ++i) {
    std::vector<AttrId> e;
    for (size_t j = 0; j < n; ++j) {
      if (j != i) e.push_back(static_cast<AttrId>(j));
    }
    bags.push_back(*hidden.Marginal(Schema{e}));
  }
  return *MakeHnInstance(std::move(bags));
}

TEST(HnChainTest, ValidatesSchemas) {
  EXPECT_FALSE(MakeHnInstance({}).ok());
  Bag b0(Schema{{1, 2}});
  Bag b1(Schema{{0, 2}});
  Bag wrong(Schema{{1, 2}});
  EXPECT_FALSE(MakeHnInstance({b0, b1, wrong}).ok());  // wants {0, 1}
}

TEST(HnChainTest, ExtensionPreservesConsistencyStatus) {
  Rng rng(87);
  for (int trial = 0; trial < 3; ++trial) {
    HnInstance in = ConsistentHnInstance(3, &rng);
    HnInstance out = *ExtendHn(in);
    EXPECT_EQ(out.n, 4u);
    EXPECT_TRUE(SolveGlobalConsistencyExact(*ToCollection(in))->has_value());
    EXPECT_TRUE(SolveGlobalConsistencyExact(*ToCollection(out))->has_value());
  }
  HnInstance bad = TseitinHnInstance(3);
  EXPECT_FALSE(SolveGlobalConsistencyExact(*ToCollection(bad))->has_value());
  HnInstance bad4 = *ExtendHn(bad);
  EXPECT_FALSE(SolveGlobalConsistencyExact(*ToCollection(bad4))->has_value());
}

TEST(HnChainTest, WitnessMapsBothWays) {
  Rng rng(88);
  HnInstance in = ConsistentHnInstance(3, &rng);
  HnInstance out = *ExtendHn(in);
  BagCollection cin = *ToCollection(in);
  BagCollection cout = *ToCollection(out);
  auto w_in = *SolveGlobalConsistencyExact(cin);
  ASSERT_TRUE(w_in.has_value());
  Bag w_out = *ExtendHnWitness(in, *w_in);
  EXPECT_TRUE(*cout.IsWitness(w_out));
  Bag w_back = *RestrictHnWitness(in, w_out);
  EXPECT_TRUE(*cin.IsWitness(w_back));
}

TEST(HnChainTest, EmptyActiveDomainRejected) {
  Bag b0(Schema{{1, 2}});
  Bag b1(Schema{{0, 2}});
  Bag b2(Schema{{0, 1}});
  HnInstance in = *MakeHnInstance({b0, b1, b2});
  EXPECT_FALSE(ExtendHn(in).ok());
}

}  // namespace
}  // namespace bagc
