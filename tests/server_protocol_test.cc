// Protocol conformance tests for the bagcd server: the ServerSession
// state machine driven in-process (grammar, error classes, session
// lifecycle, snapshot-swap semantics), the typed client helpers over a
// real socket, and — the anchor — the annotated transcript in
// docs/PROTOCOL.md replayed verbatim against a live server, so the
// documented wire format and the implementation cannot drift apart.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bag/bag_io.h"
#include "core/pairwise.h"
#include "core/two_bag.h"
#include "server/bagcd_server.h"
#include "server/client.h"
#include "server/engine_snapshot.h"
#include "server/protocol.h"
#include "server/session.h"

#ifndef BAGC_REPO_ROOT
#define BAGC_REPO_ROOT "."
#endif

namespace bagc {
namespace {

std::vector<std::string> Feed(ServerSession* session, const std::string& script) {
  return session->HandleScript(script);
}

// A tiny consistent two-bag script: dictionaries, one u32-streamed bag,
// one text bag, seal.
constexpr const char* kSetupScript = R"(DICT item 3
apple
banana
cherry
END
DICT store 2
downtown
uptown
END
LOADU32 orders item store
0 0 : 2
1 1 : 1
END
LOAD stock item store
apple downtown : 2
banana uptown : 1
END
SEAL
)";

TEST(ServerSessionTest, LifecycleAndQueries) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  std::vector<std::string> out = Feed(&session, kSetupScript);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], "OK DICT item 3");
  EXPECT_EQ(out[1], "OK DICT store 2");
  EXPECT_EQ(out[2], "OK LOADU32 orders 2 rows");
  EXPECT_EQ(out[3], "OK LOAD stock 2 rows");
  EXPECT_EQ(out[4], "OK SEAL 2 bags");

  out = Feed(&session, "TWOBAG orders stock\nPAIRWISE\nGLOBAL\nKWISE 2\n");
  ASSERT_EQ(out.size(), 4u);
  for (const std::string& line : out) EXPECT_EQ(line, "OK CONSISTENT");

  out = Feed(&session, "WITNESS 0 1 MINIMAL\n");
  ASSERT_GE(out.size(), 3u);
  EXPECT_EQ(out.front(), "OK WITNESS 2");
  EXPECT_EQ(out.back(), kWireEnd);
}

TEST(ServerSessionTest, ErrorClasses) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);

  // Query before any seal: state error.
  std::vector<std::string> out = Feed(&session, "TWOBAG 0 1\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_STATE", 0), 0u) << out[0];

  // Unknown command: parse error.
  out = Feed(&session, "FROB\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_PARSE", 0), 0u) << out[0];

  Feed(&session, kSetupScript);

  // Re-shipping a dictionary: state error (id spaces do not merge).
  out = Feed(&session, "DICT item 1\npear\nEND\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_STATE", 0), 0u) << out[0];

  // Streaming an id the dictionary never issued: range error.
  out = Feed(&session, "LOADU32 bad item store\n9 0 : 1\nEND\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_RANGE", 0), 0u) << out[0];

  // Streaming u32 rows for an attribute with no dictionary: state error.
  out = Feed(&session, "LOADU32 bad2 nodict\n0 : 1\nEND\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_STATE", 0), 0u) << out[0];

  // Duplicate bag name: state error; all-digit name: parse error.
  out = Feed(&session, "LOADU32 orders item store\n0 0 : 1\nEND\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_STATE", 0), 0u) << out[0];
  out = Feed(&session, "LOADU32 123 item store\n0 0 : 1\nEND\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_PARSE", 0), 0u) << out[0];

  // Out-of-range bag reference and unknown name on a sealed engine.
  out = Feed(&session, "TWOBAG 0 7\nTWOBAG orders nosuch\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rfind("ERR E_RANGE", 0), 0u) << out[0];
  EXPECT_EQ(out[1].rfind("ERR E_STATE", 0), 0u) << out[1];

  // An absurd seal-time worker count is rejected, not attempted (a
  // thread-spawn failure would terminate the daemon for every client).
  out = Feed(&session, "SEAL THREADS 10000000\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_RANGE", 0), 0u) << out[0];

  // A body command with a bad header still consumes its body: the row
  // lines must NOT be interpreted as commands.
  out = Feed(&session, "DICT toofew\nvalue1\nvalue2\nEND\nSTATS\n");
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[0].rfind("ERR E_PARSE", 0), 0u) << out[0];
  EXPECT_EQ(out[1], "OK STATS");
}

TEST(ServerSessionTest, ResetKeepsDictionariesHardWipes) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  Feed(&session, kSetupScript);

  std::vector<std::string> out = Feed(&session, "RESET\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "OK RESET");
  EXPECT_EQ(registry.Peek(registry.Default().get()), nullptr);

  // Dictionaries survived: the same ids stream again without DICT.
  out = Feed(&session, "LOADU32 orders item store\n2 1 : 5\nEND\nSEAL\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "OK LOADU32 orders 1 rows");
  EXPECT_EQ(out[1], "OK SEAL 1 bags");

  // HARD also wipes the dictionaries: streaming now needs a fresh DICT.
  out = Feed(&session, "RESET HARD\nLOADU32 orders item store\n0 0 : 1\nEND\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "OK RESET HARD");
  EXPECT_EQ(out[1].rfind("ERR E_STATE", 0), 0u) << out[1];
}

TEST(ServerSessionTest, SnapshotSwapIsSharedAcrossSessions) {
  CollectionRegistry registry;
  ServerSession producer(&registry, nullptr);
  ServerSession consumer(&registry, nullptr);

  Feed(&producer, kSetupScript);
  std::shared_ptr<const EngineSnapshot> first = registry.Peek(registry.Default().get());
  ASSERT_NE(first, nullptr);

  // The other session queries the producer's snapshot.
  std::vector<std::string> out = Feed(&consumer, "TWOBAG orders stock\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "OK CONSISTENT");

  // An in-flight holder keeps the old generation alive across a re-SEAL;
  // the registry hands out the new one.
  Feed(&producer, "SEAL\n");
  std::shared_ptr<const EngineSnapshot> second = registry.Peek(registry.Default().get());
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first.get(), second.get());
  EXPECT_LT(first->seq(), second->seq());
  EXPECT_EQ(first->num_bags(), 2u);  // old snapshot still fully usable
  EXPECT_TRUE(*first->TwoBag(0, 1));

  // RESET unpublishes for everyone.
  Feed(&producer, "RESET\n");
  out = Feed(&consumer, "PAIRWISE\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_STATE", 0), 0u) << out[0];
}

TEST(ServerSessionTest, CanonicalSealKeepsSessionIdsStable) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  // Ship a deliberately unsorted dictionary: canonicalization would
  // reorder it, which must not disturb the session's id space.
  std::vector<std::string> out = Feed(&session,
                                     "DICT item 3\nzebra\nmango\napple\nEND\n"
                                     "LOADU32 r item\n0 : 4\n2 : 1\nEND\n"
                                     "LOADU32 s item\n0 : 4\n2 : 1\nEND\n"
                                     "SEAL CANONICAL\n");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[3], "OK SEAL 2 bags");

  // The witness decodes to the external values the session ids named —
  // and the canonical snapshot serializes rows in sorted external order.
  out = Feed(&session, "WITNESS r s\n");
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], "OK WITNESS 2");
  EXPECT_EQ(out[1], "bag item");
  EXPECT_EQ(out[2], "apple : 1");
  EXPECT_EQ(out[3], "zebra : 4");
  EXPECT_EQ(out[4], "end");
  EXPECT_EQ(out[5], kWireEnd);

  // Session ids still refer to the shipped order (0 = zebra): stream
  // them again after the canonical seal and the verdicts line up.
  out = Feed(&session, "RESET\nLOADU32 r item\n0 : 1\nEND\n"
                      "LOADU32 s item\n1 : 1\nEND\nSEAL\nTWOBAG r s\n");
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.back(), "OK INCONSISTENT");  // zebra-bag vs mango-bag
}

TEST(ServerSessionTest, StatsShape) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  Feed(&session, kSetupScript);
  Feed(&session, "TWOBAG 0 1\n");
  std::vector<std::string> out = Feed(&session, "STATS\n");
  ASSERT_EQ(out.size(), 19u);
  EXPECT_EQ(out.front(), "OK STATS");
  EXPECT_EQ(out.back(), kWireEnd);
  EXPECT_EQ(out[1], "proto 1");
  EXPECT_EQ(out[2], "sessions 1");
  EXPECT_EQ(out[3], "seals 1");
  EXPECT_EQ(out[5], "queries 1");
  EXPECT_EQ(out[7], "bags 2");
  // Registry keys append after the protocol-v1 ten so old readers that
  // index by position keep working.
  EXPECT_EQ(out[11], "collections 1");
  EXPECT_EQ(out[12], "evictions 0");
  EXPECT_EQ(out[13], "deltas 0");
  EXPECT_EQ(out[14].rfind("sealed_bytes ", 0), 0u);
  EXPECT_EQ(out[15], "wal_records 0");
  EXPECT_EQ(out[16], "wal_bytes 0");
  EXPECT_EQ(out[17], "replayed_generations 0");

  // Per-collection STATS: registry accounting for one tenant.
  out = Feed(&session, "STATS default\n");
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out[1], "resident 1");
  EXPECT_EQ(out[2], "reloadable 0");
  EXPECT_EQ(out[4], "generation 1");
  out = Feed(&session, "STATS nosuch\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_STATE", 0), 0u) << out[0];
}

TEST(ServerSessionTest, AttachBindsItsOwnGenerationChain) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  Feed(&session, kSetupScript);  // seals into "default"

  // Rebinding to a fresh collection: queries find no engine there while
  // "default" still serves other sessions.
  std::vector<std::string> out = Feed(&session, "ATTACH tenant_a\nPAIRWISE\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "OK ATTACH tenant_a");
  EXPECT_EQ(out[1].rfind("ERR E_STATE", 0), 0u) << out[1];
  ServerSession other(&registry, nullptr);
  out = Feed(&other, "TWOBAG orders stock\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "OK CONSISTENT");

  // The loaded bags are session-local: the same session seals them into
  // the new chain, whose generation numbering starts at 1 again.
  out = Feed(&session, "SEAL\nTWOBAG orders stock\nDETACH\n");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "OK SEAL 2 bags");
  EXPECT_EQ(out[1], "OK CONSISTENT");
  EXPECT_EQ(out[2], "OK DETACH");
  EXPECT_EQ(registry.num_collections(), 2u);

  // All-digit and malformed names are refused at parse time.
  out = Feed(&session, "ATTACH 123\nATTACH\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rfind("ERR E_PARSE", 0), 0u) << out[0];
  EXPECT_EQ(out[1].rfind("ERR E_PARSE", 0), 0u) << out[1];

  // The admission cap counts "default": a third name is refused.
  CollectionRegistry::Options capped;
  capped.max_collections = 2;
  CollectionRegistry small(capped);
  ServerSession capped_session(&small, nullptr);
  out = Feed(&capped_session, "ATTACH a\nATTACH b\nATTACH a\n");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "OK ATTACH a");
  EXPECT_EQ(out[1].rfind("ERR E_STATE", 0), 0u) << out[1];
  EXPECT_EQ(out[2], "OK ATTACH a");  // re-attach to an existing name is free
}

TEST(ServerSessionTest, DropUnloadsOneStagedBag) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  Feed(&session, kSetupScript);

  // DROP + re-LOAD the same name, then re-seal: the replacement rows are
  // what the new generation serves.
  std::vector<std::string> out = Feed(&session,
                                     "DROP stock\n"
                                     "LOAD stock item store\n"
                                     "apple downtown : 99\n"
                                     "END\n"
                                     "SEAL FULL\n"
                                     "TWOBAG orders stock\n");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "OK DROP stock");
  EXPECT_EQ(out[1], "OK LOAD stock 1 rows");
  EXPECT_EQ(out[2], "OK SEAL 2 bags");
  EXPECT_EQ(out[3], "OK INCONSISTENT");

  out = Feed(&session, "DROP nosuch\nDROP\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rfind("ERR E_STATE", 0), 0u) << out[0];
  EXPECT_EQ(out[1].rfind("ERR E_PARSE", 0), 0u) << out[1];
}

TEST(ServerSessionTest, IncrementalResealReusesUntouchedBags) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  Feed(&session, kSetupScript);
  uint64_t full_fills =
      registry.Peek(registry.Default().get())->marginal_fills();
  EXPECT_GT(full_fills, 0u);

  // Touch one of the two bags; the plain re-seal reuses the other bag's
  // sealed marginals, so it fills strictly fewer than the full seal did.
  std::vector<std::string> out = Feed(&session,
                                     "DROP stock\n"
                                     "LOAD stock item store\n"
                                     "apple downtown : 2\n"
                                     "banana uptown : 1\n"
                                     "END\n"
                                     "SEAL\n");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], "OK SEAL 2 bags 1 reused");
  std::shared_ptr<const EngineSnapshot> incremental =
      registry.Peek(registry.Default().get());
  EXPECT_LT(incremental->marginal_fills(), full_fills);

  // Same bags re-sealed with FULL: identical verdicts, no reuse suffix.
  out = Feed(&session, "SEAL FULL\nTWOBAG orders stock\nPAIRWISE\n");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "OK SEAL 2 bags");
  EXPECT_EQ(out[1], "OK CONSISTENT");
  EXPECT_EQ(out[2], "OK CONSISTENT");

  // Witness rows from the incremental generation match the full one:
  // reuse shares state, never changes answers.
  ServerSession fresh(&registry, nullptr);
  std::vector<std::string> w_full =
      Feed(&fresh, "WITNESS orders stock MINIMAL\n");
  Feed(&session,
       "DROP orders\nLOADU32 orders item store\n0 0 : 2\n1 1 : 1\nEND\nSEAL\n");
  std::vector<std::string> w_incr =
      Feed(&fresh, "WITNESS orders stock MINIMAL\n");
  EXPECT_EQ(w_full, w_incr);

  // A canonical seal refuses reuse on both sides of the boundary.
  out = Feed(&session, "SEAL CANONICAL\nSEAL\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "OK SEAL 2 bags");
  EXPECT_EQ(out[1], "OK SEAL 2 bags");
}

TEST(ServerSessionTest, InsertDeltaPublishesIncrementally) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  Feed(&session, kSetupScript);  // orders == stock, consistent

  // A one-bag INSERT after a seal publishes the next generation directly
  // from the previous one — the untouched bag rides along ("1 reused"),
  // and the verdict flips because stock now carries an extra row.
  std::vector<std::string> out = Feed(&session,
                                     "INSERT stock item store\n"
                                     "2 0 : 5\n"  // cherry downtown x5
                                     "END\n"
                                     "TWOBAG orders stock\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "OK INSERT stock 1 rows 2 bags 1 reused");
  EXPECT_EQ(out[1], "OK INCONSISTENT");

  // Exactly the mutated bag's shared-marginal slot refilled: a delta
  // generation's fill counter is the dirty-slot count, not a re-seal.
  std::shared_ptr<const EngineSnapshot> published =
      registry.Peek(registry.Default().get());
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(published->marginal_fills(), 1u);

  // DELETE of the same rows restores the original bag: verdicts return,
  // and the generation counter shows two extra publishes.
  out = Feed(&session,
             "DELETE stock item store\n"
             "2 0 : 5\n"
             "END\n"
             "TWOBAG orders stock\n"
             "STATS default\n");
  ASSERT_GE(out.size(), 4u);
  EXPECT_EQ(out[0], "OK DELETE stock 1 rows 2 bags 1 reused");
  EXPECT_EQ(out[1], "OK CONSISTENT");
  EXPECT_EQ(out[6], "generation 3");

  // The global counter saw both commits.
  out = Feed(&session, "STATS\n");
  ASSERT_EQ(out.size(), 19u);
  EXPECT_EQ(out[13], "deltas 2");

  // Lineage survives a delta publish: the next plain SEAL still reuses
  // every bag (the session copy tracked the published generation).
  out = Feed(&session, "SEAL\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "OK SEAL 2 bags 2 reused");
}

TEST(ServerSessionTest, DeleteBelowZeroLeavesGenerationAndBagIntact) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  Feed(&session, kSetupScript);

  // Deleting more copies than the bag holds: E_RANGE, all-or-nothing —
  // no generation publishes and the served rows are untouched, so the
  // verdict is still the pre-delta one.
  std::vector<std::string> out = Feed(&session,
                                     "DELETE stock item store\n"
                                     "0 0 : 99\n"
                                     "END\n"
                                     "TWOBAG orders stock\n"
                                     "STATS default\n");
  ASSERT_GE(out.size(), 4u);
  EXPECT_EQ(out[0].rfind("ERR E_RANGE", 0), 0u) << out[0];
  EXPECT_NE(out[0].find("below zero"), std::string::npos) << out[0];
  EXPECT_EQ(out[1], "OK CONSISTENT");
  EXPECT_EQ(out[6], "generation 1");

  // The failed delta corrupted nothing: a valid one on the same bag
  // commits cleanly right after.
  out = Feed(&session, "INSERT stock item store\n2 1 : 1\nEND\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "OK INSERT stock 1 rows 2 bags 1 reused");

  // Same all-or-nothing on the staged path (no seal lineage): a below-
  // zero DELETE against a freshly loaded bag leaves it loadable and
  // sealable with its original rows.
  ServerSession staged(&registry, nullptr);
  out = Feed(&staged,
             "ATTACH tenant_staged\n"
             "DICT item 1\napple\nEND\n"
             "LOADU32 r item\n0 : 2\nEND\n"
             "DELETE r item\n0 : 3\nEND\n"
             "LOADU32 s item\n0 : 2\nEND\n"
             "SEAL\nTWOBAG r s\n");
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[3].rfind("ERR E_RANGE", 0), 0u) << out[3];
  EXPECT_EQ(out[5], "OK SEAL 2 bags");
  EXPECT_EQ(out[6], "OK CONSISTENT");  // r kept both copies
}

TEST(ServerSessionTest, MutateBeforeSealStagesIntoTheLoadedBag) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);

  // No seal yet: the delta lands on the loaded bag only ("staged") and
  // the following SEAL serves the mutated rows.
  std::vector<std::string> out = Feed(&session,
                                     "DICT item 2\napple\nbanana\nEND\n"
                                     "LOADU32 r item\n0 : 1\nEND\n"
                                     "LOADU32 s item\n0 : 1\n1 : 1\nEND\n"
                                     "INSERT r item\n1 : 1\nEND\n"
                                     "SEAL\nTWOBAG r s\n");
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[3], "OK INSERT r 1 rows staged");
  EXPECT_EQ(out[4], "OK SEAL 2 bags");
  EXPECT_EQ(out[5], "OK CONSISTENT");  // r grew to match s

  // A delta names attributes exactly as LOADU32 did; anything else is a
  // parse error before any row is read.
  out = Feed(&session, "INSERT r wrong\n0 : 1\nEND\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_PARSE", 0), 0u) << out[0];

  // Mutating a bag this session never loaded (including stream-only
  // names that exist solely in the sealed generation): E_STATE.
  out = Feed(&session, "DELETE nosuch item\n0 : 1\nEND\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_STATE", 0), 0u) << out[0];
  EXPECT_NE(out[0].find("not loaded"), std::string::npos) << out[0];

  // An id the dictionary never issued: E_RANGE, same wording as LOADU32.
  out = Feed(&session, "INSERT r item\n9 : 1\nEND\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR E_RANGE", 0), 0u) << out[0];
  EXPECT_NE(out[0].find("never issued"), std::string::npos) << out[0];

  // Interning after the seal (dictionary growth) demotes the next delta
  // to the staged path: the sealed generation's dictionary clone no
  // longer matches the session's.
  out = Feed(&session,
             "DICT extra 1\nx\nEND\n"
             "INSERT r item\n0 : 1\nEND\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1], "OK INSERT r 1 rows staged");
}

TEST(ServerSessionTest, MutateFramesMirrorTheTextGrammar) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  Feed(&session, kSetupScript);
  std::string raw;
  session.HandleData("UPGRADE BINARY\n", &raw);
  ASSERT_TRUE(session.binary_mode());

  auto frame = [](uint8_t opcode, const std::string& payload) {
    std::string f;
    WireAppendFrame(&f, opcode, payload);
    return f;
  };
  auto read_frames = [](const std::string& out) {
    std::vector<std::pair<uint8_t, std::string>> frames;
    size_t pos = 0;
    while (pos + kWireFrameHeaderBytes <= out.size()) {
      WireCursor header(
          std::string_view(out).substr(pos, kWireFrameHeaderBytes));
      uint32_t len = 0;
      uint8_t opcode = 0;
      EXPECT_TRUE(header.U32(&len) && header.U8(&opcode));
      frames.emplace_back(opcode, out.substr(pos + kWireFrameHeaderBytes, len));
      pos += kWireFrameHeaderBytes + len;
    }
    EXPECT_EQ(pos, out.size());
    return frames;
  };

  // INSERT frame, ROWS grammar: name, ncols, column names, nrows, then
  // fixed-width rows of ncols u32 ids + a u64 count.
  std::string payload;
  WireAppendString(&payload, "stock");
  WireAppendU32(&payload, 2);
  WireAppendString(&payload, "item");
  WireAppendString(&payload, "store");
  WireAppendU64(&payload, 1);
  WireAppendU32(&payload, 2);  // cherry
  WireAppendU32(&payload, 0);  // downtown
  WireAppendU64(&payload, 5);
  raw.clear();
  session.HandleData(frame(kFrameInsert, payload), &raw);
  auto frames = read_frames(raw);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, kFrameOk);
  EXPECT_EQ(frames[0].second, "INSERT stock 1 rows 2 bags 1 reused");

  // The DELETE frame undoes it; verdicts (queried over frames too) agree
  // with the text session's view of the same collection.
  payload.clear();
  WireAppendString(&payload, "stock");
  WireAppendU32(&payload, 2);
  WireAppendString(&payload, "item");
  WireAppendString(&payload, "store");
  WireAppendU64(&payload, 1);
  WireAppendU32(&payload, 2);
  WireAppendU32(&payload, 0);
  WireAppendU64(&payload, 5);
  raw.clear();
  session.HandleData(frame(kFrameDelete, payload) + frame(kFramePairwise, ""),
                     &raw);
  frames = read_frames(raw);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].first, kFrameOk);
  EXPECT_EQ(frames[0].second, "DELETE stock 1 rows 2 bags 1 reused");
  EXPECT_EQ(frames[1].first, kFrameVerdict);
  EXPECT_EQ(static_cast<uint8_t>(frames[1].second[0]), 1u);  // consistent

  // A frame whose declared row count disagrees with its byte length is
  // refused whole — no partial delta is read.
  payload.clear();
  WireAppendString(&payload, "stock");
  WireAppendU32(&payload, 2);
  WireAppendString(&payload, "item");
  WireAppendString(&payload, "store");
  WireAppendU64(&payload, 2);  // claims two rows, carries one
  WireAppendU32(&payload, 0);
  WireAppendU32(&payload, 0);
  WireAppendU64(&payload, 1);
  raw.clear();
  session.HandleData(frame(kFrameInsert, payload), &raw);
  frames = read_frames(raw);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, kFrameErr);
  EXPECT_EQ(frames[0].second[0], static_cast<char>(WireErrorTag(WireError::kParse)));

  // In binary mode the text body form is refused by verb name.
  raw.clear();
  session.HandleData(frame(kFrameCmd, "INSERT stock item store"), &raw);
  frames = read_frames(raw);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, kFrameErr);
  EXPECT_NE(frames[0].second.find("INSERT"), std::string::npos);
}

TEST(ServerSessionTest, BinaryModeRules) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  std::string out;
  ASSERT_EQ(session.HandleData("HELLO\nUPGRADE BINARY\n", &out),
            ServerSession::Outcome::kContinue);
  EXPECT_EQ(out, "OK HELLO proto 1 frames 1\nOK UPGRADE BINARY\n");
  EXPECT_TRUE(session.binary_mode());

  auto frame = [](uint8_t opcode, const std::string& payload) {
    std::string f;
    WireAppendFrame(&f, opcode, payload);
    return f;
  };

  // A second UPGRADE and a text body command are state errors in binary
  // mode (body blocks have no line framing to ride on).
  out.clear();
  session.HandleData(
      frame(kFrameCmd, "UPGRADE BINARY") + frame(kFrameCmd, "DICT item 1"),
      &out);
  size_t pos = 0;
  int errs = 0;
  while (pos + kWireFrameHeaderBytes <= out.size()) {
    WireCursor header(std::string_view(out).substr(pos, kWireFrameHeaderBytes));
    uint32_t len = 0;
    uint8_t opcode = 0;
    ASSERT_TRUE(header.U32(&len) && header.U8(&opcode));
    EXPECT_EQ(opcode, kFrameErr);
    Result<WireError> err = WireErrorFromTag(
        static_cast<uint8_t>(out[pos + kWireFrameHeaderBytes]));
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(*err, WireError::kState);
    ++errs;
    pos += kWireFrameHeaderBytes + len;
  }
  EXPECT_EQ(pos, out.size());
  EXPECT_EQ(errs, 2);

  // CMD TEXT drops back to lines mid-buffer: the trailing bytes of the
  // SAME HandleData call already parse as a text line, and TEXT in text
  // mode is an idempotent OK.
  out.clear();
  session.HandleData(frame(kFrameCmd, "TEXT") + std::string("TEXT\n"), &out);
  EXPECT_FALSE(session.binary_mode());
  ASSERT_GE(out.size(), 8u);
  EXPECT_EQ(out.substr(out.size() - 8), "OK TEXT\n");
}

TEST(ServerSessionTest, BinaryFrameSplitAcrossReadsParsesOnce) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  std::string out;
  session.HandleData("UPGRADE BINARY\n", &out);
  ASSERT_TRUE(session.binary_mode());

  // One CMD frame delivered a byte at a time: a frame boundary owes
  // nothing to read() boundaries. No response may appear until the final
  // payload byte lands, and then exactly one response frame must.
  std::string f;
  WireAppendFrame(&f, kFrameCmd, "STATS");
  out.clear();
  for (size_t i = 0; i + 1 < f.size(); ++i) {
    ASSERT_EQ(session.HandleData(std::string_view(&f[i], 1), &out),
              ServerSession::Outcome::kContinue);
    EXPECT_TRUE(out.empty()) << "responded after " << (i + 1) << " of "
                             << f.size() << " bytes";
  }
  session.HandleData(std::string_view(&f.back(), 1), &out);
  ASSERT_GE(out.size(), kWireFrameHeaderBytes);
  EXPECT_EQ(static_cast<uint8_t>(out[4]), kFrameStats);

  // Two frames glued into one read both answer; a trailing partial
  // header stays buffered for the next read.
  std::string two = f + f;
  std::string partial;
  WireAppendFrame(&partial, kFrameCmd, "STATS");
  two += partial.substr(0, 3);
  out.clear();
  ASSERT_EQ(session.HandleData(two, &out), ServerSession::Outcome::kContinue);
  size_t frames = 0;
  size_t pos = 0;
  while (pos + kWireFrameHeaderBytes <= out.size()) {
    WireCursor header(std::string_view(out).substr(pos, kWireFrameHeaderBytes));
    uint32_t len = 0;
    uint8_t opcode = 0;
    ASSERT_TRUE(header.U32(&len) && header.U8(&opcode));
    EXPECT_EQ(opcode, kFrameStats);
    ++frames;
    pos += kWireFrameHeaderBytes + len;
  }
  EXPECT_EQ(frames, 2u);
  out.clear();
  session.HandleData(partial.substr(3), &out);
  ASSERT_GE(out.size(), kWireFrameHeaderBytes);
  EXPECT_EQ(static_cast<uint8_t>(out[4]), kFrameStats);
}

TEST(ServerSessionTest, OversizedFramePayloadClosesTheConnection) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  std::string out;
  session.HandleData("UPGRADE BINARY\n", &out);
  ASSERT_TRUE(session.binary_mode());

  // A header that *claims* an over-limit payload is refused from the
  // header alone — the session must not buffer toward a 256 MiB+1
  // allocation before noticing, and no resync is possible mid-frame.
  std::string header;
  WireAppendU32(&header, static_cast<uint32_t>(kWireMaxFramePayload) + 1);
  header.push_back(static_cast<char>(kFrameCmd));
  out.clear();
  EXPECT_EQ(session.HandleData(header, &out),
            ServerSession::Outcome::kCloseConnection);
  ASSERT_GE(out.size(), kWireFrameHeaderBytes + 1u);
  EXPECT_EQ(static_cast<uint8_t>(out[4]), kFrameErr);
  Result<WireError> err = WireErrorFromTag(
      static_cast<uint8_t>(out[kWireFrameHeaderBytes]));
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(*err, WireError::kRange);
}

TEST(ServerSessionTest, OverlongTextLineClosesEvenWhenComplete) {
  constexpr size_t kMaxLineBytes = 1 << 20;  // mirrors session.cc

  // A complete over-long line (newline included in the same read) is as
  // abusive as a partial one; before the fix it slipped past the cap
  // because the ceiling was only checked while the newline was missing.
  {
    CollectionRegistry registry;
    ServerSession session(&registry, nullptr);
    std::string out;
    std::string line(kMaxLineBytes + 1, 'a');
    line += '\n';
    EXPECT_EQ(session.HandleData(line, &out),
              ServerSession::Outcome::kCloseConnection);
    EXPECT_EQ(out.rfind("ERR E_RANGE", 0), 0u) << out.substr(0, 40);
    EXPECT_NE(out.find("input line exceeds"), std::string::npos);
  }

  // Still-growing line with no newline yet: refused at the same ceiling.
  {
    CollectionRegistry registry;
    ServerSession session(&registry, nullptr);
    std::string out;
    std::string partial(kMaxLineBytes + 1, 'b');
    EXPECT_EQ(session.HandleData(partial, &out),
              ServerSession::Outcome::kCloseConnection);
    EXPECT_EQ(out.rfind("ERR E_RANGE", 0), 0u) << out.substr(0, 40);
  }

  // Exactly at the ceiling: parses as a (bad) command, session lives.
  {
    CollectionRegistry registry;
    ServerSession session(&registry, nullptr);
    std::string out;
    std::string line(kMaxLineBytes, 'c');
    line += '\n';
    EXPECT_EQ(session.HandleData(line, &out),
              ServerSession::Outcome::kContinue);
    EXPECT_EQ(out.rfind("ERR E_PARSE", 0), 0u) << out.substr(0, 40);
  }
}

// ---- Socket-level tests ----------------------------------------------------

TEST(BagcdServerTest, TypedClientHelpersMatchSingleShotCore) {
  // Build a string-valued collection locally.
  AttributeCatalog catalog;
  auto dicts = std::make_shared<DictionarySet>();
  std::string text =
      "bag item store\napple downtown : 2\nbanana uptown : 1\nend\n"
      "bag store region\ndowntown north : 3\nuptown north : 1\nend\n";
  Result<std::vector<Bag>> bags = ParseCollection(text, &catalog, dicts.get());
  ASSERT_TRUE(bags.ok()) << bags.status().ToString();

  Result<std::unique_ptr<BagcdServer>> server = BagcdServer::Start({});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Result<BagcdClient> client =
      BagcdClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(client->banner(), kWireBanner);

  for (const Bag& bag : *bags) {
    ASSERT_TRUE(client->ShipDictionaries(*dicts, bag.schema(), catalog).ok());
  }
  ASSERT_TRUE(client->LoadBagU32("sales", (*bags)[0], catalog).ok());
  ASSERT_TRUE(client->LoadBagU32("stores", (*bags)[1], catalog).ok());
  Result<size_t> sealed = client->Seal();
  ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();
  EXPECT_EQ(*sealed, 2u);

  // Single-shot reference answers.
  bool expect_two = *AreConsistent((*bags)[0], (*bags)[1]);
  EXPECT_EQ(*client->TwoBag(0, 1), expect_two);
  Result<std::optional<std::pair<size_t, size_t>>> pairwise = client->Pairwise();
  ASSERT_TRUE(pairwise.ok());
  EXPECT_EQ(!pairwise->has_value(), expect_two);

  Result<std::optional<std::vector<std::string>>> witness =
      client->Witness(0, 1, /*minimal=*/true);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  if (expect_two) {
    ASSERT_TRUE(witness->has_value());
    std::optional<Bag> reference = *FindMinimalWitness((*bags)[0], (*bags)[1]);
    ASSERT_TRUE(reference.has_value());
    // The wire text must decode to exactly the single-shot witness.
    std::string block;
    for (const std::string& line : **witness) block += line + "\n";
    AttributeCatalog reparse_catalog = catalog;
    size_t pos = 0;
    std::vector<std::string> lines;
    std::istringstream iss(block);
    std::string line;
    while (std::getline(iss, line)) lines.push_back(line);
    Result<Bag> decoded = ParseBag(lines, &pos, &reparse_catalog, dicts.get());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, *reference);
  }
  (*server)->Shutdown();
}

// One session that negotiates frames mid-stream (text HELLO/UPGRADE ->
// binary DICT/ROWS/queries -> back to text for STATS) must be
// indistinguishable — verdicts, witness rows and multiplicities, STATS —
// from a session that stays in the text framing throughout. Each run
// gets its own server so the registry counters line up byte-for-byte.
TEST(BagcdServerTest, MixedModeSessionMatchesPureTextSession) {
  AttributeCatalog catalog;
  auto dicts = std::make_shared<DictionarySet>();
  std::string text =
      "bag item store\napple downtown : 2\nbanana uptown : 1\n"
      "cherry uptown : 5\nend\n"
      "bag store region\ndowntown north : 2\nuptown north : 6\nend\n";
  Result<std::vector<Bag>> bags = ParseCollection(text, &catalog, dicts.get());
  ASSERT_TRUE(bags.ok()) << bags.status().ToString();

  struct Run {
    std::vector<std::string> verdicts;  // rendered query response lines
    std::vector<std::string> witness;   // witness bag block lines
    std::vector<std::string> stats;     // STATS response lines
  };
  auto run_session = [&](bool mixed) -> Run {
    Run r;
    Result<std::unique_ptr<BagcdServer>> server = BagcdServer::Start({});
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    Result<BagcdClient> client =
        BagcdClient::Connect("127.0.0.1", (*server)->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    if (mixed) {
      Result<std::pair<int, int>> hello = client->Hello();
      EXPECT_TRUE(hello.ok()) << hello.status().ToString();
      EXPECT_EQ(hello->first, kWireProtocolVersion);
      EXPECT_EQ(hello->second, kWireFrameVersion);
      EXPECT_TRUE(client->UpgradeBinary().ok());
      EXPECT_TRUE(client->binary_mode());
    }
    // Dictionaries and rows travel as DICT/ROWS frames when mixed, as
    // text blocks otherwise — same helper calls either way.
    for (const Bag& bag : *bags) {
      EXPECT_TRUE(client->ShipDictionaries(*dicts, bag.schema(), catalog).ok());
    }
    EXPECT_TRUE(client->LoadBagU32("sales", (*bags)[0], catalog).ok());
    EXPECT_TRUE(client->LoadBagU32("stores", (*bags)[1], catalog).ok());
    Result<size_t> sealed = client->Seal();
    EXPECT_TRUE(sealed.ok()) << sealed.status().ToString();
    // Command() re-renders binary responses as the exact text lines, so
    // the two runs compare byte-for-byte.
    for (const char* query :
         {"TWOBAG sales stores", "PAIRWISE", "GLOBAL", "KWISE 2"}) {
      Result<std::vector<std::string>> lines = client->Command(query);
      EXPECT_TRUE(lines.ok()) << query << ": " << lines.status().ToString();
      if (lines.ok()) {
        for (const std::string& line : *lines) r.verdicts.push_back(line);
      }
    }
    Result<std::optional<std::vector<std::string>>> witness =
        client->Witness(0, 1, /*minimal=*/true);
    EXPECT_TRUE(witness.ok()) << witness.status().ToString();
    if (witness.ok() && witness->has_value()) r.witness = **witness;
    if (mixed) {
      EXPECT_TRUE(client->DowngradeText().ok());
      EXPECT_FALSE(client->binary_mode());
    }
    Result<std::vector<std::string>> stats = client->Command("STATS");
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    if (stats.ok()) r.stats = *stats;
    (*server)->Shutdown();
    return r;
  };

  Run text_run = run_session(/*mixed=*/false);
  Run mixed_run = run_session(/*mixed=*/true);
  EXPECT_EQ(text_run.verdicts, mixed_run.verdicts);
  ASSERT_FALSE(text_run.witness.empty());
  EXPECT_EQ(text_run.witness, mixed_run.witness);  // rows AND multiplicities
  EXPECT_EQ(text_run.stats, mixed_run.stats);
}

TEST(BagcdServerTest, ProtocolDocTranscriptReplaysVerbatim) {
  std::ifstream in(std::string(BAGC_REPO_ROOT) + "/docs/PROTOCOL.md");
  ASSERT_TRUE(in.good()) << "docs/PROTOCOL.md not found under " << BAGC_REPO_ROOT;
  std::stringstream text;
  text << in.rdbuf();

  Result<std::unique_ptr<BagcdServer>> server = BagcdServer::Start({});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Result<size_t> replayed =
      ReplayTranscript("127.0.0.1", (*server)->port(), text.str());
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_GE(*replayed, 1u);
  (*server)->Shutdown();
}

TEST(BagcdServerTest, SurvivesClientsThatNeverReadTheirResponses) {
  Result<std::unique_ptr<BagcdServer>> server = BagcdServer::Start({});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  // Each rogue client floods commands and closes without reading a byte:
  // the server's response writes hit a dead peer (EPIPE after the RST) —
  // which must cost that connection only, never the process (SIGPIPE
  // would take down every session; reproduced before MSG_NOSIGNAL).
  for (int rogue = 0; rogue < 3; ++rogue) {
    Result<BagcdClient> client =
        BagcdClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 500; ++i) {
      if (!client->SendLine("STATS").ok()) break;  // server buffer filled: fine
    }
    // Destructor closes the socket with every response unread.
  }
  // The daemon must still serve a well-behaved client.
  Result<BagcdClient> survivor =
      BagcdClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(survivor.ok()) << survivor.status().ToString();
  Result<std::vector<std::string>> stats = survivor->Command("STATS");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->front(), "OK STATS");
  (*server)->Shutdown();
}

TEST(ServerSessionTest, TransactionCommitIsAtomicAcrossBags) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  Feed(&session, kSetupScript);

  // A COMMIT whose LAST bag's delta is invalid publishes nothing: the
  // orders insert was individually fine, but the stock delete
  // underflows, so neither bag — and no generation — changes.
  std::vector<std::string> out = Feed(&session,
                                      "BEGIN\n"
                                      "INSERT orders item store\n2 0 : 1\nEND\n"
                                      "DELETE stock item store\n1 1 : 9\nEND\n"
                                      "COMMIT\n");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "OK BEGIN");
  EXPECT_EQ(out[1], "OK INSERT orders 1 rows buffered");
  EXPECT_EQ(out[2], "OK DELETE stock 1 rows buffered");
  EXPECT_EQ(out[3].rfind("ERR E_RANGE DELETE below zero multiplicity", 0), 0u)
      << out[3];

  // Still generation 1, and the buffered orders row never landed: a
  // witness for the untouched pair shows the original multiplicities.
  out = Feed(&session, "STATS\nWITNESS 0 1\n");
  EXPECT_EQ(out[6], "snapshot 1") << "failed COMMIT must not publish";
  std::string joined;
  for (const std::string& line : out) joined += line + "\n";
  EXPECT_NE(joined.find("apple downtown : 2"), std::string::npos) << joined;

  // The failed COMMIT closed the transaction; the same deltas with a
  // legal delete commit as one generation touching both bags.
  out = Feed(&session,
             "BEGIN\n"
             "INSERT orders item store\n2 0 : 1\nEND\n"
             "DELETE stock item store\n1 1 : 1\nEND\n"
             "COMMIT\nSTATS\n");
  ASSERT_GE(out.size(), 23u);
  EXPECT_EQ(out[3], "OK COMMIT 2 rows 2 bags");
  // The failed attempt burned a sequence number without publishing:
  // generation ids are monotonic, not dense.
  EXPECT_EQ(out[10], "snapshot 3");
  // marginal_fills lands on exactly the batch's dirty slots: both bags
  // mutated, one shared-attribute slot each.
  EXPECT_EQ(out[14], "marginal_fills 2");

  // Structural commands are refused mid-transaction; RESET discards it.
  out = Feed(&session, "BEGIN\nSEAL\nDROP orders\nRESET\nCOMMIT\n");
  ASSERT_EQ(out.size(), 5u);
  EXPECT_NE(out[1].find("not allowed inside a transaction"), std::string::npos);
  EXPECT_NE(out[2].find("not allowed inside a transaction"), std::string::npos);
  EXPECT_EQ(out[3], "OK RESET");
  EXPECT_EQ(out[4].rfind("ERR E_STATE no transaction is open", 0), 0u) << out[4];
}

TEST(ServerSessionTest, TransactionCumulativeCapsRefuseOversizedBuffering) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  Feed(&session, kSetupScript);
  // The body caps are per block; these cumulative caps are what bound a
  // whole transaction (and guarantee COMMIT fits one WAL record).
  // Shrunk so the refusal is reachable without buffering ~4M rows.
  session.SetTxnCapsForTest(/*rows=*/3, /*wal_bytes=*/0);

  std::vector<std::string> out =
      Feed(&session,
           "BEGIN\n"
           "INSERT orders item store\n0 0 : 1\n1 1 : 1\nEND\n"
           "INSERT orders item store\n2 0 : 1\n2 1 : 1\nEND\n"
           "COMMIT\n");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "OK BEGIN");
  EXPECT_EQ(out[1], "OK INSERT orders 2 rows buffered");
  // The second block would push the transaction past the row cap: it is
  // refused whole, the transaction stays open with the first block
  // intact, and COMMIT publishes exactly what was accepted.
  EXPECT_EQ(out[2].rfind("ERR E_RANGE transaction exceeds 3 buffered rows", 0),
            0u)
      << out[2];
  EXPECT_EQ(out[3].rfind("OK COMMIT 2 rows 2 bags", 0), 0u) << out[3];

  // The byte cap trips the same way (12 bytes of block header alone
  // exceeds a 1-byte budget), and a fresh BEGIN resets the accounting.
  session.SetTxnCapsForTest(/*rows=*/0, /*wal_bytes=*/1);
  out = Feed(&session,
             "BEGIN\n"
             "INSERT orders item store\n0 0 : 1\nEND\n"
             "COMMIT\n");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].rfind("ERR E_RANGE transaction exceeds", 0), 0u) << out[1];
  EXPECT_NE(out[1].find("encoded bytes"), std::string::npos) << out[1];
  EXPECT_EQ(out[2], "OK COMMIT 0 rows");
}

TEST(ServerSessionTest, TransactionFramesRoundTripAndRefuseTrailingBytes) {
  CollectionRegistry registry;
  ServerSession session(&registry, nullptr);
  Feed(&session, kSetupScript);
  std::string raw;
  session.HandleData("UPGRADE BINARY\n", &raw);
  ASSERT_TRUE(session.binary_mode());

  auto frame = [](uint8_t opcode, const std::string& payload) {
    std::string f;
    WireAppendFrame(&f, opcode, payload);
    return f;
  };
  auto read_frames = [](const std::string& out) {
    std::vector<std::pair<uint8_t, std::string>> frames;
    size_t pos = 0;
    while (pos + kWireFrameHeaderBytes <= out.size()) {
      WireCursor header(
          std::string_view(out).substr(pos, kWireFrameHeaderBytes));
      uint32_t len = 0;
      uint8_t opcode = 0;
      EXPECT_TRUE(header.U32(&len) && header.U8(&opcode));
      frames.emplace_back(opcode, out.substr(pos + kWireFrameHeaderBytes, len));
      pos += kWireFrameHeaderBytes + len;
    }
    EXPECT_EQ(pos, out.size());
    return frames;
  };
  auto rows_payload = [](const std::string& bag, uint32_t item, uint32_t store,
                         uint64_t count) {
    std::string payload;
    WireAppendString(&payload, bag);
    WireAppendU32(&payload, 2);
    WireAppendString(&payload, "item");
    WireAppendString(&payload, "store");
    WireAppendU64(&payload, 1);
    WireAppendU32(&payload, item);
    WireAppendU32(&payload, store);
    WireAppendU64(&payload, count);
    return payload;
  };

  // BEGIN / buffered deltas / COMMIT entirely over frames: one atomic
  // two-bag generation, same response text as the text verbs.
  raw.clear();
  session.HandleData(frame(kFrameBegin, "") +
                         frame(kFrameInsert, rows_payload("orders", 2, 0, 1)) +
                         frame(kFrameDelete, rows_payload("stock", 0, 0, 1)) +
                         frame(kFrameCommit, ""),
                     &raw);
  auto frames = read_frames(raw);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].first, kFrameOk);
  EXPECT_EQ(frames[0].second, "BEGIN");
  EXPECT_EQ(frames[1].second, "INSERT orders 1 rows buffered");
  EXPECT_EQ(frames[2].second, "DELETE stock 1 rows buffered");
  EXPECT_EQ(frames[3].first, kFrameOk);
  EXPECT_EQ(frames[3].second, "COMMIT 2 rows 2 bags");

  // A BEGIN/COMMIT frame carrying payload bytes is malformed — refused
  // without opening or closing anything.
  raw.clear();
  session.HandleData(frame(kFrameBegin, "x"), &raw);
  frames = read_frames(raw);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, kFrameErr);
  EXPECT_NE(frames[0].second.find("no payload"), std::string::npos);
  raw.clear();
  session.HandleData(frame(kFrameCommit, "\x01"), &raw);
  frames = read_frames(raw);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, kFrameErr);
  // No transaction was opened by the bad BEGIN frame above.
  raw.clear();
  session.HandleData(frame(kFrameCommit, ""), &raw);
  frames = read_frames(raw);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, kFrameErr);
  EXPECT_NE(frames[0].second.find("no transaction is open"), std::string::npos);
}

TEST(BagcdServerTest, ShutdownCommandStopsTheServer) {
  Result<std::unique_ptr<BagcdServer>> server = BagcdServer::Start({});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Result<BagcdClient> client =
      BagcdClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendLine("SHUTDOWN").ok());
  Result<std::string> bye = client->ReadLine();
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(*bye, "OK BYE");
  (*server)->Wait();  // returns because the command requested shutdown
}

}  // namespace
}  // namespace bagc
