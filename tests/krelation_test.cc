// Tests for the K-relation generalization (§6): the Boolean instance
// reproduces Relation semantics, the counting instance reproduces Bag
// semantics (bit-exact agreement on random inputs), and the tropical
// instance exercises a genuinely different positive semiring. Also
// reproduces the paper's closing observation that equality of shared
// marginals is necessary for consistency in any positive semiring.
#include <gtest/gtest.h>

#include "bag/bag.h"
#include "bag/krelation.h"
#include "bag/relation.h"
#include "generators/workloads.h"
#include "util/random.h"

namespace bagc {
namespace {

KRelation<CountingSemiring> FromBag(const Bag& bag) {
  KRelation<CountingSemiring> out(bag.schema());
  for (const auto& [t, m] : bag.entries()) {
    EXPECT_TRUE(out.Set(t, m).ok());
  }
  return out;
}

Bag ToBag(const KRelation<CountingSemiring>& k) {
  Bag out(k.schema());
  for (const auto& [t, m] : k.entries()) {
    EXPECT_TRUE(out.Set(t, m).ok());
  }
  return out;
}

KRelation<BoolSemiring> FromRelation(const Relation& rel) {
  KRelation<BoolSemiring> out(rel.schema());
  for (const Tuple& t : rel.tuples()) {
    EXPECT_TRUE(out.Set(t, true).ok());
  }
  return out;
}

TEST(KRelationTest, CountingInstanceMatchesBagMarginals) {
  Rng rng(801);
  BagGenOptions options;
  options.support_size = 20;
  options.domain_size = 3;
  for (int trial = 0; trial < 20; ++trial) {
    Bag bag = *MakeRandomBag(Schema{{0, 1, 2}}, options, &rng);
    KRelation<CountingSemiring> k = FromBag(bag);
    for (const Schema& z :
         {Schema{{0}}, Schema{{1, 2}}, Schema{{0, 2}}, Schema{}}) {
      EXPECT_EQ(ToBag(*k.Marginal(z)), *bag.Marginal(z));
    }
  }
}

TEST(KRelationTest, CountingInstanceMatchesBagJoin) {
  Rng rng(802);
  BagGenOptions options;
  options.support_size = 10;
  options.domain_size = 3;
  for (int trial = 0; trial < 15; ++trial) {
    Bag r = *MakeRandomBag(Schema{{0, 1}}, options, &rng);
    Bag s = *MakeRandomBag(Schema{{1, 2}}, options, &rng);
    auto kj = *KRelation<CountingSemiring>::Join(FromBag(r), FromBag(s));
    EXPECT_EQ(ToBag(kj), *Bag::Join(r, s));
  }
}

TEST(KRelationTest, BooleanInstanceMatchesRelationSemantics) {
  Rng rng(803);
  BagGenOptions options;
  options.support_size = 12;
  options.domain_size = 3;
  for (int trial = 0; trial < 15; ++trial) {
    Relation r = Relation::SupportOf(*MakeRandomBag(Schema{{0, 1}}, options, &rng));
    Relation s = Relation::SupportOf(*MakeRandomBag(Schema{{1, 2}}, options, &rng));
    // Join.
    auto kj = *KRelation<BoolSemiring>::Join(FromRelation(r), FromRelation(s));
    Relation expect_join = *Relation::Join(r, s);
    EXPECT_EQ(kj.SupportSize(), expect_join.size());
    for (const Tuple& t : expect_join.tuples()) {
      EXPECT_TRUE(kj.At(t));
    }
    // Projection = Boolean marginal.
    auto kp = *FromRelation(r).Marginal(Schema{{1}});
    Relation expect_proj = *r.Project(Schema{{1}});
    EXPECT_EQ(kp.SupportSize(), expect_proj.size());
  }
}

TEST(KRelationTest, TropicalJoinAddsCosts) {
  KRelation<TropicalSemiring> r(Schema{{0, 1}});
  ASSERT_TRUE(r.Set(Tuple{{0, 0}}, 3).ok());
  KRelation<TropicalSemiring> s(Schema{{1, 2}});
  ASSERT_TRUE(s.Set(Tuple{{0, 0}}, 4).ok());
  ASSERT_TRUE(s.Set(Tuple{{0, 1}}, 1).ok());
  auto j = *KRelation<TropicalSemiring>::Join(r, s);
  EXPECT_EQ(j.At(Tuple{{0, 0, 0}}), 7u);
  EXPECT_EQ(j.At(Tuple{{0, 0, 1}}), 4u);
}

TEST(KRelationTest, TropicalMarginalTakesMinimum) {
  KRelation<TropicalSemiring> r(Schema{{0, 1}});
  ASSERT_TRUE(r.Set(Tuple{{0, 0}}, 5).ok());
  ASSERT_TRUE(r.Set(Tuple{{1, 0}}, 2).ok());
  auto m = *r.Marginal(Schema{{1}});
  EXPECT_EQ(m.At(Tuple{{0}}), 2u);  // min(5, 2)
}

TEST(KRelationTest, ZeroAnnotationsLeaveSupport) {
  KRelation<CountingSemiring> r(Schema{{0}});
  ASSERT_TRUE(r.Set(Tuple{{1}}, 5).ok());
  ASSERT_TRUE(r.Set(Tuple{{1}}, 0).ok());
  EXPECT_EQ(r.SupportSize(), 0u);
  KRelation<TropicalSemiring> t(Schema{{0}});
  ASSERT_TRUE(t.Set(Tuple{{1}}, TropicalSemiring::kInfinity).ok());
  EXPECT_EQ(t.SupportSize(), 0u);
}

TEST(KRelationTest, SharedMarginalNecessityAcrossSemirings) {
  // If T marginalizes onto both R and S, then R[Z] = T[X][Z] = T[Z] =
  // T[Y][Z] = S[Z] — in ANY semiring. Sample a hidden T in each semiring
  // and check the necessary condition holds for its marginals.
  Rng rng(804);
  for (int trial = 0; trial < 10; ++trial) {
    // Counting semiring hidden witness.
    BagGenOptions options;
    options.support_size = 10;
    options.domain_size = 3;
    Bag hidden = *MakeRandomBag(Schema{{0, 1, 2}}, options, &rng);
    KRelation<CountingSemiring> t = FromBag(hidden);
    auto r = *t.Marginal(Schema{{0, 1}});
    auto s = *t.Marginal(Schema{{1, 2}});
    EXPECT_TRUE(*SharedMarginalsAgree(r, s));
    // Tropical hidden witness (costs = multiplicities).
    KRelation<TropicalSemiring> tt(Schema{{0, 1, 2}});
    for (const auto& [tuple, m] : hidden.entries()) {
      ASSERT_TRUE(tt.Set(tuple, m).ok());
    }
    auto rr = *tt.Marginal(Schema{{0, 1}});
    auto ss = *tt.Marginal(Schema{{1, 2}});
    EXPECT_TRUE(*SharedMarginalsAgree(rr, ss));
  }
}

TEST(KRelationTest, CountingOverflowSurfaces) {
  KRelation<CountingSemiring> r(Schema{{0, 1}});
  uint64_t half = ~uint64_t{0} / 2 + 1;
  ASSERT_TRUE(r.Set(Tuple{{0, 0}}, half).ok());
  ASSERT_TRUE(r.Set(Tuple{{1, 0}}, half).ok());
  EXPECT_FALSE(r.Marginal(Schema{{1}}).ok());
}

}  // namespace
}  // namespace bagc
