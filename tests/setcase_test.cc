// Tests for the set-semantics baseline (§5.1): relation consistency, the
// join-based global consistency criterion, the Yannakakis full reducer,
// and the HLY80 coloring reduction.
#include <gtest/gtest.h>

#include "generators/workloads.h"
#include "hypergraph/families.h"
#include "reductions/coloring.h"
#include "setcase/relation_consistency.h"
#include "util/random.h"

namespace bagc {
namespace {

TEST(RelationConsistencyTest, SharedProjectionCriterion) {
  Relation r = *MakeRelation(Schema{{0, 1}}, {{0, 0}, {1, 1}});
  Relation s = *MakeRelation(Schema{{1, 2}}, {{0, 5}, {1, 6}});
  EXPECT_TRUE(*AreConsistentRelations(r, s));
  Relation s2 = *MakeRelation(Schema{{1, 2}}, {{0, 5}});
  EXPECT_FALSE(*AreConsistentRelations(r, s2));
}

TEST(RelationConsistencyTest, PairwiseDetection) {
  Relation r = *MakeRelation(Schema{{0, 1}}, {{0, 0}});
  Relation s = *MakeRelation(Schema{{1, 2}}, {{0, 0}});
  Relation t = *MakeRelation(Schema{{2, 3}}, {{5, 0}});  // B-value mismatch
  std::pair<size_t, size_t> bad;
  EXPECT_FALSE(*ArePairwiseConsistentRelations({r, s, t}, &bad));
  EXPECT_EQ(bad, (std::pair<size_t, size_t>{1, 2}));
}

TEST(RelationGlobalTest, PaperCounterexample) {
  // §4: pairwise consistent but not globally consistent relations.
  Relation r = *MakeRelation(Schema{{0, 1}}, {{0, 0}, {1, 1}});
  Relation s = *MakeRelation(Schema{{1, 2}}, {{0, 1}, {1, 0}});
  Relation t = *MakeRelation(Schema{{0, 2}}, {{0, 0}, {1, 1}});
  EXPECT_TRUE(*ArePairwiseConsistentRelations({r, s, t}));
  auto witness = *SolveGlobalConsistencyRelations({r, s, t});
  EXPECT_FALSE(witness.has_value());
}

TEST(RelationGlobalTest, JoinIsLargestWitness) {
  Rng rng(61);
  BagGenOptions options;
  options.support_size = 14;
  options.domain_size = 3;
  for (int trial = 0; trial < 20; ++trial) {
    Hypergraph h = *MakeRandomAcyclic(2 + rng.Below(4), 1 + rng.Below(3), &rng);
    BagCollection bags = *MakeGloballyConsistentCollection(h, options, &rng);
    std::vector<Relation> rels;
    for (const Bag& b : bags.bags()) rels.push_back(Relation::SupportOf(b));
    auto witness = *SolveGlobalConsistencyRelations(rels);
    ASSERT_TRUE(witness.has_value());
    for (const Relation& r : rels) {
      EXPECT_EQ(*witness->Project(r.schema()), r);
    }
  }
}

TEST(FullReducerTest, RemovesDanglingTuples) {
  // Path schema; a dangling tuple in the middle relation.
  Relation r = *MakeRelation(Schema{{0, 1}}, {{0, 0}});
  Relation s = *MakeRelation(Schema{{1, 2}}, {{0, 0}, {9, 9}});  // (9,9) dangles
  Relation t = *MakeRelation(Schema{{2, 3}}, {{0, 0}});
  std::vector<Relation> reduced = *FullReduce({r, s, t});
  EXPECT_EQ(reduced[0].size(), 1u);
  EXPECT_EQ(reduced[1].size(), 1u);
  EXPECT_FALSE(reduced[1].Contains(Tuple{{9, 9}}));
  EXPECT_EQ(reduced[2].size(), 1u);
}

TEST(FullReducerTest, AgreesWithJoinCriterionOnAcyclic) {
  // BFMY: for acyclic schemas, "full reduction changes nothing" coincides
  // with the join-projection criterion.
  Rng rng(62);
  BagGenOptions options;
  options.support_size = 10;
  options.domain_size = 3;
  for (int trial = 0; trial < 30; ++trial) {
    Hypergraph h = *MakeRandomAcyclic(2 + rng.Below(4), 1 + rng.Below(3), &rng);
    std::vector<Relation> rels;
    for (const Schema& e : h.edges()) {
      Bag b = *MakeRandomBag(e, options, &rng);
      rels.push_back(Relation::SupportOf(b));
    }
    bool nonempty = true;
    for (const Relation& r : rels) nonempty &= !r.IsEmpty();
    if (!nonempty) continue;
    bool via_reducer = *IsGloballyConsistentAcyclicRelations(rels);
    bool via_join = SolveGlobalConsistencyRelations(rels)->has_value();
    EXPECT_EQ(via_reducer, via_join) << h.ToString();
  }
}

TEST(FullReducerTest, AcyclicPairwiseEqualsGlobalForRelations) {
  // Theorem 1 (a) => (e): marginalized (projected) collections over
  // acyclic schemas are globally consistent.
  Rng rng(63);
  BagGenOptions options;
  options.support_size = 12;
  options.domain_size = 3;
  for (int trial = 0; trial < 20; ++trial) {
    Hypergraph h = *MakeRandomAcyclic(2 + rng.Below(4), 1 + rng.Below(3), &rng);
    Schema all = Schema::UnionAll(h.edges());
    Bag hidden = *MakeRandomBag(all, options, &rng);
    if (hidden.IsEmpty()) continue;
    Relation universal = Relation::SupportOf(hidden);
    std::vector<Relation> rels;
    for (const Schema& e : h.edges()) rels.push_back(*universal.Project(e));
    EXPECT_TRUE(*ArePairwiseConsistentRelations(rels));
    EXPECT_TRUE(*IsGloballyConsistentAcyclicRelations(rels));
  }
}

TEST(FullReducerTest, RejectsCyclicSchemas) {
  Relation r = *MakeRelation(Schema{{0, 1}}, {{0, 0}});
  Relation s = *MakeRelation(Schema{{1, 2}}, {{0, 0}});
  Relation t = *MakeRelation(Schema{{0, 2}}, {{0, 0}});
  EXPECT_FALSE(FullReduce({r, s, t}).ok());
}

TEST(FullReducerTest, DuplicateSchemasIntersect) {
  Relation r1 = *MakeRelation(Schema{{0, 1}}, {{0, 0}, {1, 1}});
  Relation r2 = *MakeRelation(Schema{{0, 1}}, {{0, 0}, {2, 2}});
  Relation s = *MakeRelation(Schema{{1, 2}}, {{0, 0}, {1, 0}, {2, 0}});
  std::vector<Relation> reduced = *FullReduce({r1, r2, s});
  // Only the common tuple (0,0) survives in both copies.
  EXPECT_EQ(reduced[0], reduced[1]);
  EXPECT_EQ(reduced[0].size(), 1u);
  // r1 != reduced => not globally consistent.
  EXPECT_FALSE(*IsGloballyConsistentAcyclicRelations({r1, r2, s}));
}

// ---- HLY80 coloring reduction ----

TEST(ColoringTest, TriangleIsColorableAndConsistent) {
  ColoringInstance g;
  g.num_vertices = 3;
  g.edges = {{0, 1}, {1, 2}, {0, 2}};
  ASSERT_TRUE(SolveThreeColoringBruteForce(g).has_value());
  std::vector<Relation> rels = *ColoringToRelations(g);
  EXPECT_EQ(rels.size(), 3u);
  EXPECT_EQ(rels[0].size(), 6u);
  auto witness = *SolveGlobalConsistencyRelations(rels);
  EXPECT_TRUE(witness.has_value());
}

TEST(ColoringTest, K4IsColorableButK4PlusCliqueEdgesMatters) {
  // K4 is not 3-colorable.
  ColoringInstance k4;
  k4.num_vertices = 4;
  for (size_t u = 0; u < 4; ++u) {
    for (size_t v = u + 1; v < 4; ++v) k4.edges.emplace_back(u, v);
  }
  EXPECT_FALSE(SolveThreeColoringBruteForce(k4).has_value());
  std::vector<Relation> rels = *ColoringToRelations(k4);
  auto witness = *SolveGlobalConsistencyRelations(rels);
  EXPECT_FALSE(witness.has_value());
}

TEST(ColoringTest, ReductionAgreesWithBruteForce) {
  Rng rng(64);
  for (int trial = 0; trial < 25; ++trial) {
    ColoringInstance g = MakeRandomGraph(6, 1, 2, &rng);
    if (g.edges.empty()) continue;
    bool colorable = SolveThreeColoringBruteForce(g).has_value();
    std::vector<Relation> rels = *ColoringToRelations(g);
    bool consistent = SolveGlobalConsistencyRelations(rels)->has_value();
    EXPECT_EQ(colorable, consistent);
  }
}

TEST(ColoringTest, PlantedColorableGraphsAreConsistent) {
  Rng rng(65);
  for (int trial = 0; trial < 10; ++trial) {
    ColoringInstance g = MakeColorableGraph(7, 2, 3, &rng);
    if (g.edges.empty()) continue;
    EXPECT_TRUE(SolveThreeColoringBruteForce(g).has_value());
    std::vector<Relation> rels = *ColoringToRelations(g);
    EXPECT_TRUE(SolveGlobalConsistencyRelations(rels)->has_value());
  }
}

}  // namespace
}  // namespace bagc
