// Unit tests for the LP builder, the exact integer-feasibility solver, and
// the rational closed-form solution of Lemma 2.
#include <gtest/gtest.h>

#include "bag/bag.h"
#include "generators/workloads.h"
#include "solver/integer_feasibility.h"
#include "solver/lp.h"
#include "solver/rational_witness.h"
#include "util/random.h"

namespace bagc {
namespace {

std::vector<Bag> TwoBagExample() {
  // The §3 example: R1(AB) = {(1,2):1, (2,2):1}, S1(BC) = {(2,1):1, (2,2):1}.
  Bag r = *MakeBag(Schema{{0, 1}}, {{{1, 2}, 1}, {{2, 2}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{2, 1}, 1}, {{2, 2}, 1}});
  return {r, s};
}

TEST(LpTest, BuildTwoBagProgram) {
  ConsistencyLp lp = *BuildConsistencyLp(TwoBagExample());
  EXPECT_EQ(lp.joined_schema, Schema({0, 1, 2}));
  EXPECT_EQ(lp.variables.size(), 4u);  // 2x2 join
  // 2 + 2 support rows; no zero rows (all projections hit supports).
  EXPECT_EQ(lp.rows.size(), 4u);
  // Every variable appears in exactly one row per bag.
  std::vector<size_t> count(lp.variables.size(), 0);
  for (const LpRow& row : lp.rows) {
    for (uint32_t v : row.vars) ++count[v];
  }
  for (size_t c : count) EXPECT_EQ(c, 2u);
}

TEST(LpTest, JoinCapIsEnforced) {
  std::vector<Bag> bags;
  // Three bags over disjoint schemas with 8 tuples each: join support 512.
  for (AttrId a = 0; a < 3; ++a) {
    Bag b(Schema{{a}});
    for (Value v = 0; v < 8; ++v) {
      ASSERT_TRUE(b.Set(Tuple{{v}}, 1).ok());
    }
    bags.push_back(std::move(b));
  }
  EXPECT_FALSE(BuildConsistencyLp(bags, 100).ok());
  EXPECT_TRUE(BuildConsistencyLp(bags, 512).ok());
}

TEST(LpTest, BuildWithRestrictedVariables) {
  auto bags = TwoBagExample();
  // Restrict to the two tuples of the witness T1 from the paper.
  std::vector<Tuple> vars = {Tuple{{1, 2, 2}}, Tuple{{2, 2, 1}}};
  ConsistencyLp lp = *BuildLpWithVariables(bags, vars);
  EXPECT_EQ(lp.variables.size(), 2u);
  auto solution = *SolveIntegerFeasibility(lp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ((*solution)[0], 1u);
  EXPECT_EQ((*solution)[1], 1u);
}

TEST(LpTest, RestrictedVariablesRejectBadArity) {
  auto bags = TwoBagExample();
  EXPECT_FALSE(BuildLpWithVariables(bags, {Tuple{{1, 2}}}).ok());
}

TEST(IntegerFeasibilityTest, PaperExampleHasExactlyTwoWitnesses) {
  // §3: the consistency of R1 and S1 is witnessed by exactly the bags T1
  // and T2 — and no other.
  ConsistencyLp lp = *BuildConsistencyLp(TwoBagExample());
  auto solutions = *EnumerateIntegerSolutions(lp);
  EXPECT_EQ(solutions.size(), 2u);
  EXPECT_EQ(*CountIntegerSolutions(lp), 2u);
}

TEST(IntegerFeasibilityTest, InfeasibleDetected) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 2}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}});
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  auto solution = *SolveIntegerFeasibility(lp);
  EXPECT_FALSE(solution.has_value());
  EXPECT_EQ(*CountIntegerSolutions(lp), 0u);
}

TEST(IntegerFeasibilityTest, EmptyJoinWithNonzeroRhsInfeasible) {
  // Supports do not join at all: rows have no variables.
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 5}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{6, 0}, 1}});
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  EXPECT_TRUE(lp.variables.empty());
  auto solution = *SolveIntegerFeasibility(lp);
  EXPECT_FALSE(solution.has_value());
}

TEST(IntegerFeasibilityTest, NodeLimitReported) {
  // A moderately large feasible instance with a tiny node budget.
  Rng rng(3);
  BagGenOptions options;
  options.support_size = 64;
  options.domain_size = 8;
  auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  SolveOptions limited;
  limited.node_limit = 3;
  auto result = SolveIntegerFeasibility(lp, limited);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(IntegerFeasibilityTest, SolutionSatisfiesAllRows) {
  Rng rng(11);
  BagGenOptions options;
  options.support_size = 10;
  options.domain_size = 3;
  for (int trial = 0; trial < 20; ++trial) {
    auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    ConsistencyLp lp = *BuildConsistencyLp({r, s});
    SolveStats stats;
    auto solution = *SolveIntegerFeasibility(lp, {}, &stats);
    ASSERT_TRUE(solution.has_value());
    EXPECT_GT(stats.nodes, 0u);
    for (const LpRow& row : lp.rows) {
      uint64_t sum = 0;
      for (uint32_t v : row.vars) sum += (*solution)[v];
      EXPECT_EQ(sum, row.rhs);
    }
  }
}

TEST(IntegerFeasibilityTest, AscendingValueOrderAlsoWorks) {
  ConsistencyLp lp = *BuildConsistencyLp(TwoBagExample());
  SolveOptions opts;
  opts.descend_values = false;
  auto solution = *SolveIntegerFeasibility(lp, opts);
  EXPECT_TRUE(solution.has_value());
  EXPECT_EQ(*CountIntegerSolutions(lp, 1u << 20, opts), 2u);
}

TEST(IntegerFeasibilityTest, CountLimitReported) {
  ConsistencyLp lp = *BuildConsistencyLp(TwoBagExample());
  auto result = CountIntegerSolutions(lp, 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(RationalWitnessTest, ClosedFormSolvesConsistentPairs) {
  Rng rng(29);
  BagGenOptions options;
  options.support_size = 14;
  options.domain_size = 3;
  for (int trial = 0; trial < 25; ++trial) {
    auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    ConsistencyLp lp = *BuildConsistencyLp({r, s});
    RationalSolution sol = *BuildRationalSolution(r, s, lp);
    EXPECT_TRUE(*VerifyRationalSolution(lp, sol));
  }
}

TEST(RationalWitnessTest, InconsistentPairRejected) {
  Rng rng(31);
  BagGenOptions options;
  options.support_size = 10;
  options.domain_size = 3;
  auto [r, s] = *MakeInconsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  auto result = BuildRationalSolution(r, s, lp);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RationalWitnessTest, VerifierRejectsWrongSolutions) {
  auto bags = TwoBagExample();
  ConsistencyLp lp = *BuildConsistencyLp(bags);
  RationalSolution sol = *BuildRationalSolution(bags[0], bags[1], lp);
  EXPECT_TRUE(*VerifyRationalSolution(lp, sol));
  // Corrupt one entry.
  sol.values[0] = *Rational::Add(sol.values[0], Rational(1));
  EXPECT_FALSE(*VerifyRationalSolution(lp, sol));
  // Wrong size.
  sol.values.pop_back();
  EXPECT_FALSE(VerifyRationalSolution(lp, sol).ok());
}

TEST(RationalWitnessTest, FractionalVerticesArePossible) {
  // The closed-form solution is generally fractional: R(AB)={(0,0):1,(1,0):1},
  // S(BC)={(0,0):1,(0,1):1} gives x_t = 1*1/2 for all four join tuples.
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}, {{1, 0}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}, {{0, 1}, 1}});
  ConsistencyLp lp = *BuildConsistencyLp({r, s});
  RationalSolution sol = *BuildRationalSolution(r, s, lp);
  ASSERT_EQ(sol.values.size(), 4u);
  for (const Rational& v : sol.values) {
    EXPECT_EQ(v, *Rational::Make(1, 2));
  }
  // Hoffman–Kruskal: the polytope nonetheless has integral points (the
  // integer solver finds one).
  auto integral = *SolveIntegerFeasibility(lp);
  EXPECT_TRUE(integral.has_value());
}

}  // namespace
}  // namespace bagc
