// Unit tests for the max-flow substrate and the consistency network N(R,S).
#include <gtest/gtest.h>

#include "bag/bag.h"
#include "flow/consistency_network.h"
#include "flow/network.h"
#include "generators/workloads.h"
#include "util/random.h"

namespace bagc {
namespace {

TEST(FlowNetworkTest, SingleEdge) {
  FlowNetwork net(2);
  auto e = net.AddEdge(0, 1, 5);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*net.Solve(0, 1), 5u);
  EXPECT_EQ(net.FlowOn(*e), 5u);
}

TEST(FlowNetworkTest, BottleneckPath) {
  // 0 -> 1 -> 2 with capacities 7 and 3: max flow 3.
  FlowNetwork net(3);
  ASSERT_TRUE(net.AddEdge(0, 1, 7).ok());
  ASSERT_TRUE(net.AddEdge(1, 2, 3).ok());
  EXPECT_EQ(*net.Solve(0, 2), 3u);
}

TEST(FlowNetworkTest, ParallelPathsAndResiduals) {
  // Classic diamond requiring the residual edge: s=0, t=3.
  // 0->1 (1), 0->2 (1), 1->3 (1), 2->3 (1), 1->2 (1): max flow 2.
  FlowNetwork net(4);
  ASSERT_TRUE(net.AddEdge(0, 1, 1).ok());
  ASSERT_TRUE(net.AddEdge(0, 2, 1).ok());
  ASSERT_TRUE(net.AddEdge(1, 3, 1).ok());
  ASSERT_TRUE(net.AddEdge(2, 3, 1).ok());
  ASSERT_TRUE(net.AddEdge(1, 2, 1).ok());
  EXPECT_EQ(*net.Solve(0, 3), 2u);
}

TEST(FlowNetworkTest, DisconnectedHasZeroFlow) {
  FlowNetwork net(4);
  ASSERT_TRUE(net.AddEdge(0, 1, 9).ok());
  ASSERT_TRUE(net.AddEdge(2, 3, 9).ok());
  EXPECT_EQ(*net.Solve(0, 3), 0u);
}

TEST(FlowNetworkTest, Validation) {
  FlowNetwork net(2);
  EXPECT_FALSE(net.AddEdge(0, 5, 1).ok());
  EXPECT_FALSE(net.Solve(0, 0).ok());
  EXPECT_FALSE(net.Solve(0, 9).ok());
}

TEST(FlowNetworkTest, SetCapacityAndResolve) {
  FlowNetwork net(2);
  auto e = *net.AddEdge(0, 1, 5);
  EXPECT_EQ(*net.Solve(0, 1), 5u);
  ASSERT_TRUE(net.SetCapacity(e, 2).ok());
  EXPECT_EQ(*net.Solve(0, 1), 2u);
  ASSERT_TRUE(net.SetCapacity(e, 5).ok());
  EXPECT_EQ(*net.Solve(0, 1), 5u);
  EXPECT_FALSE(net.SetCapacity(99, 1).ok());
}

TEST(FlowNetworkTest, FlowConservation) {
  // Random bipartite-ish network: check conservation at inner vertices by
  // re-deriving flows from FlowOn.
  Rng rng(17);
  size_t left = 5, right = 5;
  FlowNetwork net(2 + left + right);
  size_t s = 0, t = 1 + left + right;
  std::vector<FlowNetwork::EdgeId> edges;
  std::vector<std::pair<size_t, size_t>> endpoints;
  for (size_t i = 0; i < left; ++i) {
    edges.push_back(*net.AddEdge(s, 1 + i, rng.Range(1, 10)));
    endpoints.push_back({s, 1 + i});
  }
  for (size_t j = 0; j < right; ++j) {
    edges.push_back(*net.AddEdge(1 + left + j, t, rng.Range(1, 10)));
    endpoints.push_back({1 + left + j, t});
  }
  for (size_t i = 0; i < left; ++i) {
    for (size_t j = 0; j < right; ++j) {
      if (rng.Chance(1, 2)) {
        edges.push_back(*net.AddEdge(1 + i, 1 + left + j, FlowNetwork::kUnbounded));
        endpoints.push_back({1 + i, 1 + left + j});
      }
    }
  }
  uint64_t value = *net.Solve(s, t);
  std::vector<int64_t> balance(net.num_vertices(), 0);
  for (size_t k = 0; k < edges.size(); ++k) {
    uint64_t f = net.FlowOn(edges[k]);
    EXPECT_LE(f, net.CapacityOf(edges[k]));
    balance[endpoints[k].first] -= static_cast<int64_t>(f);
    balance[endpoints[k].second] += static_cast<int64_t>(f);
  }
  for (size_t v = 0; v < net.num_vertices(); ++v) {
    if (v == s) {
      EXPECT_EQ(balance[v], -static_cast<int64_t>(value));
    } else if (v == t) {
      EXPECT_EQ(balance[v], static_cast<int64_t>(value));
    } else {
      EXPECT_EQ(balance[v], 0) << "vertex " << v;
    }
  }
}

TEST(ConsistencyNetworkTest, ConsistentPairSaturates) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{1, 2}, 1}, {{2, 2}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{2, 1}, 1}, {{2, 2}, 1}});
  ConsistencyNetwork net = *ConsistencyNetwork::Make(r, s);
  EXPECT_EQ(net.SourceCapacity(), 2u);
  EXPECT_EQ(net.SinkCapacity(), 2u);
  EXPECT_EQ(net.NumMiddleEdges(), 4u);  // both R-tuples join both S-tuples
  EXPECT_TRUE(*net.HasSaturatedFlow());
  Bag witness = *net.ExtractWitness();
  EXPECT_EQ(*witness.Marginal(r.schema()), r);
  EXPECT_EQ(*witness.Marginal(s.schema()), s);
}

TEST(ConsistencyNetworkTest, MismatchedTotalsDoNotSaturate) {
  Bag r = *MakeBag(Schema{{0}}, {{{1}, 3}});
  Bag s = *MakeBag(Schema{{1}}, {{{1}, 2}});
  ConsistencyNetwork net = *ConsistencyNetwork::Make(r, s);
  EXPECT_FALSE(*net.HasSaturatedFlow());
}

TEST(ConsistencyNetworkTest, InconsistentSharedMarginalsDoNotSaturate) {
  // Equal totals but different shared marginals.
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 2}, {{1, 1}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}, {{1, 1}, 2}});
  ConsistencyNetwork net = *ConsistencyNetwork::Make(r, s);
  EXPECT_FALSE(*net.HasSaturatedFlow());
}

TEST(ConsistencyNetworkTest, SuppressAndRestoreMiddleEdges) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{1, 2}, 1}, {{2, 2}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{2, 1}, 1}, {{2, 2}, 1}});
  ConsistencyNetwork net = *ConsistencyNetwork::Make(r, s);
  ASSERT_TRUE(*net.HasSaturatedFlow());
  // Suppressing all middle edges kills saturation.
  for (size_t i = 0; i < net.NumMiddleEdges(); ++i) {
    ASSERT_TRUE(net.SuppressMiddleEdge(i).ok());
  }
  EXPECT_FALSE(*net.HasSaturatedFlow());
  for (size_t i = 0; i < net.NumMiddleEdges(); ++i) {
    ASSERT_TRUE(net.RestoreMiddleEdge(i).ok());
  }
  EXPECT_TRUE(*net.HasSaturatedFlow());
  EXPECT_FALSE(net.SuppressMiddleEdge(999).ok());
}

TEST(ConsistencyNetworkTest, RandomConsistentPairsAlwaysSaturate) {
  Rng rng(23);
  BagGenOptions options;
  options.support_size = 24;
  options.domain_size = 4;
  for (int trial = 0; trial < 30; ++trial) {
    auto [r, s] = *MakeConsistentPair(Schema{{0, 1}}, Schema{{1, 2}}, options, &rng);
    ConsistencyNetwork net = *ConsistencyNetwork::Make(r, s);
    EXPECT_TRUE(*net.HasSaturatedFlow());
    Bag witness = *net.ExtractWitness();
    EXPECT_EQ(*witness.Marginal(r.schema()), r);
    EXPECT_EQ(*witness.Marginal(s.schema()), s);
  }
}

}  // namespace
}  // namespace bagc
