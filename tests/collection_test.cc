// Tests for collections, pairwise/k-wise consistency, the Theorem 6
// acyclic algorithm, the exact NP solver, witness minimization, the
// Theorem 3 size bounds, and Example 1 (exponential join witness).
#include <gtest/gtest.h>

#include "bag/relation.h"
#include "core/collection.h"
#include "core/global.h"
#include "core/pairwise.h"
#include "generators/workloads.h"
#include "hypergraph/acyclicity.h"
#include "hypergraph/families.h"
#include "util/random.h"

namespace bagc {
namespace {

TEST(BagCollectionTest, MakeDerivesHypergraph) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}});
  BagCollection c = *BagCollection::Make({r, s});
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.hypergraph().num_edges(), 2u);
  EXPECT_EQ(c.union_schema(), Schema({0, 1, 2}));
  EXPECT_FALSE(BagCollection::Make({}).ok());
  EXPECT_FALSE(BagCollection::Make({Bag(Schema{})}).ok());
}

TEST(BagCollectionTest, IsWitnessChecksAllMarginals) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}, {{1, 1}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}, {{1, 1}, 1}});
  BagCollection c = *BagCollection::Make({r, s});
  Bag good = *MakeBag(Schema{{0, 1, 2}}, {{{0, 0, 0}, 1}, {{1, 1, 1}, 1}});
  EXPECT_TRUE(*c.IsWitness(good));
  Bag bad = *MakeBag(Schema{{0, 1, 2}}, {{{0, 0, 0}, 2}});
  EXPECT_FALSE(*c.IsWitness(bad));
  Bag wrong_schema = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}});
  EXPECT_FALSE(*c.IsWitness(wrong_schema));
}

TEST(BagCollectionTest, Subcollection) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}});
  Bag t = *MakeBag(Schema{{2, 3}}, {{{0, 0}, 1}});
  BagCollection c = *BagCollection::Make({r, s, t});
  BagCollection sub = *c.Subcollection({0, 2});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.bag(1).schema(), Schema({2, 3}));
  EXPECT_FALSE(c.Subcollection({7}).ok());
}

TEST(PairwiseTest, DetectsFailingPair) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}});
  Bag t = *MakeBag(Schema{{2, 3}}, {{{0, 0}, 2}});  // cardinality mismatch
  BagCollection c = *BagCollection::Make({r, s, t});
  std::pair<size_t, size_t> bad;
  EXPECT_FALSE(*ArePairwiseConsistent(c, &bad));
  EXPECT_EQ(bad.first, 0u);
  EXPECT_EQ(bad.second, 2u);
}

TEST(PairwiseTest, MarginalizedCollectionsArePairwiseConsistent) {
  Rng rng(7);
  BagGenOptions options;
  options.support_size = 16;
  options.domain_size = 3;
  Hypergraph h = *MakeCycle(4);
  for (int trial = 0; trial < 10; ++trial) {
    BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
    EXPECT_TRUE(*ArePairwiseConsistent(c));
  }
}

TEST(KWiseTest, RelationCounterexampleFromPaper) {
  // §4: R(AB) = {00, 11}, S(BC) = {01, 10}, T(AC) = {00, 11} — pairwise
  // consistent but not globally consistent (as 0/1 bags).
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}, {{1, 1}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 1}, 1}, {{1, 0}, 1}});
  Bag t = *MakeBag(Schema{{0, 2}}, {{{0, 0}, 1}, {{1, 1}, 1}});
  BagCollection c = *BagCollection::Make({r, s, t});
  EXPECT_TRUE(*ArePairwiseConsistent(c));
  EXPECT_TRUE(*AreKWiseConsistent(c, 2));
  std::optional<std::vector<size_t>> failing;
  EXPECT_FALSE(*AreKWiseConsistent(c, 3, &failing));
  ASSERT_TRUE(failing.has_value());
  EXPECT_EQ(failing->size(), 3u);
  EXPECT_FALSE(*IsGloballyConsistent(c));
}

TEST(KWiseTest, KLargerThanCollectionTestsWholeCollection) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}});
  BagCollection c = *BagCollection::Make({r, s});
  EXPECT_TRUE(*AreKWiseConsistent(c, 5));
  EXPECT_FALSE(AreKWiseConsistent(c, 1).ok());
}

// ---- Theorem 6: acyclic polynomial algorithm ----

TEST(AcyclicGlobalTest, SolvesMarginalizedCollections) {
  Rng rng(51);
  BagGenOptions options;
  options.support_size = 20;
  options.domain_size = 3;
  for (int trial = 0; trial < 25; ++trial) {
    Hypergraph h = *MakeRandomAcyclic(2 + rng.Below(6), 1 + rng.Below(3), &rng);
    BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
    auto witness = *SolveGlobalConsistencyAcyclic(c);
    ASSERT_TRUE(witness.has_value()) << h.ToString();
    EXPECT_TRUE(*c.IsWitness(*witness));
    // Theorem 6 support bound.
    size_t total = 0;
    for (const Bag& b : c.bags()) total += b.SupportSize();
    EXPECT_LE(witness->SupportSize(), total);
  }
}

TEST(AcyclicGlobalTest, RejectsCyclicSchemas) {
  Rng rng(52);
  BagGenOptions options;
  Hypergraph h = *MakeCycle(3);
  BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
  auto result = SolveGlobalConsistencyAcyclic(c);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AcyclicGlobalTest, DetectsPairwiseInconsistency) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 2}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}});
  BagCollection c = *BagCollection::Make({r, s});
  auto witness = *SolveGlobalConsistencyAcyclic(c);
  EXPECT_FALSE(witness.has_value());
}

TEST(AcyclicGlobalTest, PathSchemaWitnessMultiplicityBound) {
  // Theorem 3(1) on the acyclic output: ||W||mu <= max ||Ri||mu.
  Rng rng(53);
  BagGenOptions options;
  options.support_size = 12;
  options.domain_size = 3;
  options.max_multiplicity = 100;
  for (int trial = 0; trial < 15; ++trial) {
    Hypergraph h = *MakePath(4);
    BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
    auto witness = *SolveGlobalConsistencyAcyclic(c);
    ASSERT_TRUE(witness.has_value());
    uint64_t max_mu = 0;
    for (const Bag& b : c.bags()) max_mu = std::max(max_mu, b.MultiplicityBound());
    EXPECT_LE(witness->MultiplicityBound(), max_mu);
  }
}

TEST(AcyclicGlobalTest, DuplicateSchemasHandled) {
  // Two bags with the same schema: consistent iff equal.
  Bag r1 = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 2}});
  Bag r2 = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 2}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 3}, 2}});
  BagCollection c = *BagCollection::Make({r1, r2, s});
  auto witness = *SolveGlobalConsistencyAcyclic(c);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(*c.IsWitness(*witness));
  // Unequal duplicates are pairwise inconsistent.
  Bag r3 = *MakeBag(Schema{{0, 1}}, {{{0, 1}, 2}});
  BagCollection c2 = *BagCollection::Make({r1, r3, s});
  EXPECT_FALSE(SolveGlobalConsistencyAcyclic(c2)->has_value());
}

// ---- Exact solver agreement ----

TEST(ExactGlobalTest, AgreesWithAcyclicAlgorithmOnAcyclicSchemas) {
  Rng rng(54);
  BagGenOptions options;
  options.support_size = 8;
  options.domain_size = 3;
  options.max_multiplicity = 4;
  for (int trial = 0; trial < 15; ++trial) {
    Hypergraph h = *MakeRandomAcyclic(2 + rng.Below(3), 1 + rng.Below(3), &rng);
    BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
    auto acyclic = *SolveGlobalConsistencyAcyclic(c);
    auto exact = *SolveGlobalConsistencyExact(c);
    EXPECT_EQ(acyclic.has_value(), exact.has_value());
    if (exact.has_value()) {
      EXPECT_TRUE(*c.IsWitness(*exact));
    }
  }
}

TEST(ExactGlobalTest, SolvesCyclicConsistentCollections) {
  Rng rng(55);
  BagGenOptions options;
  options.support_size = 8;
  options.domain_size = 2;
  options.max_multiplicity = 3;
  Hypergraph h = *MakeCycle(3);
  for (int trial = 0; trial < 10; ++trial) {
    BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
    auto witness = *SolveGlobalConsistencyExact(c);
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(*c.IsWitness(*witness));
    EXPECT_TRUE(*IsGloballyConsistent(c));
  }
}

// ---- Theorem 3 bounds and witness minimization ----

TEST(WitnessSizeTest, MinimizedWitnessMeetsCaratheodoryBound) {
  // Theorem 3(3): a minimal witness has ||W||supp <= Σ ||Ri||_b.
  Rng rng(56);
  BagGenOptions options;
  options.support_size = 5;
  options.domain_size = 2;
  options.max_multiplicity = 20;
  Hypergraph h = *MakeCycle(3);
  for (int trial = 0; trial < 8; ++trial) {
    BagCollection c = *MakeGloballyConsistentCollection(h, options, &rng);
    auto witness = *SolveGlobalConsistencyExact(c);
    ASSERT_TRUE(witness.has_value());
    Bag minimal = *MinimizeWitnessSupport(c, *witness);
    EXPECT_TRUE(*c.IsWitness(minimal));
    uint64_t bound = 0;
    for (const Bag& b : c.bags()) bound += b.BinarySize();
    EXPECT_LE(minimal.SupportSize(), bound);
    // Theorem 3(1) and 3(2) hold for *every* witness.
    uint64_t max_mu = 0, total_u = 0;
    for (const Bag& b : c.bags()) {
      max_mu = std::max(max_mu, b.MultiplicityBound());
      total_u += *b.UnarySize();
    }
    EXPECT_LE(witness->MultiplicityBound(), max_mu);
    EXPECT_LE(witness->SupportSize(), total_u);
  }
}

TEST(WitnessSizeTest, MinimizeRejectsNonWitness) {
  Bag r = *MakeBag(Schema{{0, 1}}, {{{0, 0}, 1}});
  Bag s = *MakeBag(Schema{{1, 2}}, {{{0, 0}, 1}});
  BagCollection c = *BagCollection::Make({r, s});
  Bag not_witness = *MakeBag(Schema{{0, 1, 2}}, {{{0, 0, 0}, 5}});
  EXPECT_FALSE(MinimizeWitnessSupport(c, not_witness).ok());
}

TEST(ExampleOneTest, JoinWitnessIsExponentiallyLarger) {
  // Example 1: path schema A1..An, all bags {0,1}^2 with multiplicity 2^n;
  // the bag with support {0,1}^n and constant multiplicity 4... — here we
  // check the *structural* claim on a small n: the join of the supports
  // has 2^n tuples while a minimal witness stays polynomial.
  size_t n = 6;
  std::vector<Bag> bags;
  uint64_t mult = uint64_t{1} << n;  // 2^n
  for (size_t i = 0; i + 1 < n; ++i) {
    Schema e{{static_cast<AttrId>(i), static_cast<AttrId>(i + 1)}};
    Bag b(e);
    for (Value a = 0; a < 2; ++a) {
      for (Value bb = 0; bb < 2; ++bb) {
        ASSERT_TRUE(b.Set(Tuple{{a, bb}}, mult).ok());
      }
    }
    bags.push_back(std::move(b));
  }
  BagCollection c = *BagCollection::Make(bags);
  // The constant-4 cube witnesses consistency (as in the example, with
  // multiplicity 2^n = 4 * 2^(n-2)... the example uses multiplicity 4 with
  // 2^n support; here total cardinality per bag is 4 * 2^n, so the cube
  // multiplicity is 4 * 2^n / 2^n = 4).
  auto witness = *SolveGlobalConsistencyAcyclic(c);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(*c.IsWitness(*witness));
  // Theorem 6 keeps the output small: support <= Σ ||Ri||supp = 4(n-1),
  // exponentially below the 2^n join support.
  EXPECT_LE(witness->SupportSize(), 4 * (n - 1));
  Relation join = Relation::SupportOf(bags[0]);
  for (size_t i = 1; i < bags.size(); ++i) {
    join = *Relation::Join(join, Relation::SupportOf(bags[i]));
  }
  EXPECT_EQ(join.size(), size_t{1} << n);
}

}  // namespace
}  // namespace bagc
